#include "service/planner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "dag/spec.hpp"
#include "devices/registry.hpp"
#include "service/arrivals.hpp"
#include "service/scheduler.hpp"

namespace pmemflow::service {
namespace {

// The golden scenarios and fingerprint below were captured by running
// this exact block against the pre-planner commit (the last one with
// the per-policy choosers inside Region); the pins in kGoldenPins are
// that run's output. Keep the block byte-stable: re-recording pins is
// only legitimate for a deliberate, documented schedule change.

/// Schedule fingerprint: every placement-visible field of every
/// completion record, in completion order, plus the drop count.
/// cache_hit and allocator counters are deliberately excluded — they
/// describe planner-internal traffic, not the schedule.
std::uint64_t schedule_fingerprint(const ServiceResult& result) {
  Hasher64 hasher;
  hasher.update_u64(result.completions.size());
  hasher.update_u64(result.metrics.dropped);
  for (const auto& r : result.completions) {
    hasher.update_u64(r.id);
    hasher.update_u64(r.node);
    hasher.update_u64(r.slot);
    hasher.update_u64(static_cast<std::uint64_t>(r.config.mode));
    hasher.update_u64(static_cast<std::uint64_t>(r.config.placement));
    hasher.update_u64(r.start_ns);
    hasher.update_u64(r.finish_ns);
    hasher.update_u64(r.preemptions);
    hasher.update_u64(r.migrations);
    hasher.update_u64(r.colocations);
    hasher.update_u64(r.ephemeral_edges);
    hasher.update_bool(r.dag);
  }
  return hasher.digest();
}

ArrivalParams golden_stream_params() {
  ArrivalParams params;
  params.count = 160;
  params.classes = 10;
  params.mean_interarrival_ns = 6.0e6;
  params.seed = 0x5EED10;
  params.urgent_fraction = 0.15;
  params.batch_fraction = 0.30;
  return params;
}

ServiceConfig golden_config(PlacementPolicy policy) {
  ServiceConfig config;
  config.nodes = 5;
  config.queue_capacity = 256;
  config.defer_watermark = 1.0;
  config.policy = policy;
  return config;
}

std::vector<NodeSpec> golden_hetero_specs(std::uint32_t nodes) {
  const char* presets[] = {"optane-gen1", "dram-like", "cxl-like"};
  std::vector<NodeSpec> specs;
  for (std::uint32_t i = 0; i < nodes; ++i) {
    NodeSpec spec;
    spec.backend_name = presets[i % 3];
    spec.devices = *devices::parse_backend(spec.backend_name);
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::shared_ptr<const dag::DagSpec> golden_chain_dag() {
  dag::DagSpec spec;
  spec.label = "golden-chain";
  spec.iterations = 2;
  dag::DagComponent writer;
  writer.name = "writer";
  writer.ranks = 4;
  writer.object_size = 1 * kMiB;
  writer.objects_per_rank = 4;
  writer.compute_ns = 1e7;
  dag::DagComponent reader;
  reader.name = "reader";
  reader.ranks = 4;
  reader.analytics_ns_per_object = 500.0;
  spec.components = {writer, reader};
  spec.edges = {dag::DagEdge{"writer", "reader", {}, 0}};
  return std::make_shared<const dag::DagSpec>(std::move(spec));
}

/// Burst-then-lull stream: the first 30 submissions arrive 5 ms apart
/// (saturating the fleet), the rest 8 s apart (the fleet fully drains
/// between arrivals, so several idle nodes with uneven accumulated
/// busy time are visible to every placement — the regime where
/// first-fit and least-loaded genuinely differ).
Expected<std::vector<Submission>> golden_two_phase_stream() {
  ArrivalParams params = golden_stream_params();
  params.count = 50;
  auto stream = make_submission_stream(params);
  if (!stream.has_value()) return stream;
  for (std::size_t i = 0; i < stream->size(); ++i) {
    if (i < 30) {
      (*stream)[i].arrival_ns = static_cast<SimTime>(i) * 5 * kMillisecond;
    } else {
      (*stream)[i].arrival_ns = 30 * 5 * kMillisecond +
                                static_cast<SimTime>(i - 29) * 8 * kSecond;
    }
  }
  return stream;
}

/// The pre-refactor greedy scenarios the planner must reproduce at
/// window 1: all placement policies, plus the heterogeneous-routing,
/// preemption, and bounded-capacity variants of the paths that branch
/// on fleet state.
struct GoldenScenario {
  const char* name;
  ServiceConfig config;
  ArrivalParams params;
  bool dag_stream = false;
  bool two_phase = false;
};

std::vector<GoldenScenario> golden_scenarios() {
  std::vector<GoldenScenario> scenarios;
  scenarios.push_back(
      {"first-fit", golden_config(PlacementPolicy::kFirstFit),
       golden_stream_params()});
  scenarios.push_back(
      {"least-loaded", golden_config(PlacementPolicy::kLeastLoaded),
       golden_stream_params()});
  for (PlacementPolicy policy :
       {PlacementPolicy::kFirstFit, PlacementPolicy::kLeastLoaded}) {
    GoldenScenario lull{policy == PlacementPolicy::kFirstFit
                            ? "first-fit-lull"
                            : "least-loaded-lull",
                        golden_config(policy), golden_stream_params()};
    lull.two_phase = true;
    scenarios.push_back(std::move(lull));
  }
  {
    GoldenScenario tight{"least-loaded-tight-queue",
                         golden_config(PlacementPolicy::kLeastLoaded),
                         golden_stream_params()};
    tight.config.queue_capacity = 12;
    tight.config.defer_watermark = 0.5;
    scenarios.push_back(std::move(tight));
  }
  scenarios.push_back(
      {"recommender", golden_config(PlacementPolicy::kRecommenderAware),
       golden_stream_params()});
  {
    GoldenScenario hetero{"recommender-hetero",
                          golden_config(PlacementPolicy::kRecommenderAware),
                          golden_stream_params()};
    hetero.config.node_specs = golden_hetero_specs(hetero.config.nodes);
    scenarios.push_back(std::move(hetero));
  }
  scenarios.push_back(
      {"colocation", golden_config(PlacementPolicy::kColocationAware),
       golden_stream_params()});
  {
    GoldenScenario capacity{"capacity",
                            golden_config(PlacementPolicy::kCapacityAware),
                            golden_stream_params()};
    capacity.config.capacity.pmem_per_socket = static_cast<Bytes>(6e9);
    capacity.config.capacity.retention.retain_versions = 2;
    scenarios.push_back(std::move(capacity));
  }
  {
    GoldenScenario preempt{"preemption",
                           golden_config(PlacementPolicy::kRecommenderAware),
                           golden_stream_params()};
    preempt.config.preemption = PreemptionPolicy::kCheckpointRestore;
    preempt.params.urgent_fraction = 0.25;
    scenarios.push_back(std::move(preempt));
  }
  {
    GoldenScenario fusion{"dag-fusion",
                          golden_config(PlacementPolicy::kDagFusion),
                          golden_stream_params()};
    fusion.params.count = 48;
    fusion.dag_stream = true;
    scenarios.push_back(std::move(fusion));
  }
  return scenarios;
}

Expected<ServiceResult> run_golden(const GoldenScenario& scenario) {
  auto stream = scenario.two_phase ? golden_two_phase_stream()
                                   : make_submission_stream(scenario.params);
  if (!stream.has_value()) return Unexpected(stream.error());
  if (scenario.dag_stream) {
    const auto chain = golden_chain_dag();
    for (auto& submission : *stream) submission.dag = chain;
  }
  OnlineScheduler scheduler(scenario.config);
  return scheduler.run(*stream);
}

/// Pre-refactor schedule fingerprints, recorded from the legacy
/// per-policy chooser path (the commit that preceded the planner). The
/// window-1 planner must reproduce every one, byte for byte.
struct GoldenPin {
  const char* name;
  std::uint64_t fingerprint;
};

constexpr GoldenPin kGoldenPins[] = {
    {"first-fit", 0x7138c8b5c9cb5ae2ULL},
    {"least-loaded", 0x7138c8b5c9cb5ae2ULL},
    {"first-fit-lull", 0x2da41be0fbc9ea96ULL},
    {"least-loaded-lull", 0x60e612e778a486baULL},
    {"least-loaded-tight-queue", 0x264825f497c06393ULL},
    {"recommender", 0x3abbc4115577e8e4ULL},
    {"recommender-hetero", 0xab30bd71003ae3f9ULL},
    {"colocation", 0x845fed21d79593fdULL},
    {"capacity", 0xf4e38c638812f364ULL},
    {"preemption", 0x653b3c75d0242f5bULL},
    {"dag-fusion", 0x76f86f913a113574ULL},
};

std::uint64_t pin_for(const std::string& name) {
  for (const GoldenPin& pin : kGoldenPins) {
    if (name == pin.name) return pin.fingerprint;
  }
  ADD_FAILURE() << "no golden pin for scenario " << name;
  return 0;
}

std::vector<Submission> golden_stream(const GoldenScenario& scenario) {
  auto stream = scenario.two_phase ? golden_two_phase_stream()
                                   : make_submission_stream(scenario.params);
  EXPECT_TRUE(stream.has_value());
  if (scenario.dag_stream) {
    const auto chain = golden_chain_dag();
    for (auto& submission : *stream) submission.dag = chain;
  }
  return *stream;
}

std::uint64_t run_fingerprint(const ServiceConfig& config,
                              const std::vector<Submission>& stream) {
  OnlineScheduler scheduler(config);
  auto result = scheduler.run(stream);
  EXPECT_TRUE(result.has_value())
      << (result.has_value() ? "" : result.error().message);
  return result.has_value() ? schedule_fingerprint(*result) : 0;
}

GoldenScenario scenario_named(const std::string& name) {
  for (auto& scenario : golden_scenarios()) {
    if (name == scenario.name) return scenario;
  }
  ADD_FAILURE() << "no scenario named " << name;
  return GoldenScenario{"", ServiceConfig{}, ArrivalParams{}};
}

/// Scenarios covering every planner enumeration branch (plain,
/// heterogeneous recommender routing, co-location packing, capacity
/// tiering, whole-node DAG placement) for the cross-product tests that
/// would be too slow over all eleven.
std::vector<std::string> branch_scenarios() {
  return {"least-loaded", "recommender-hetero", "colocation", "capacity",
          "dag-fusion"};
}

TEST(PlannerGolden, WindowOneIsByteIdenticalToPreRefactorGreedy) {
  for (const auto& scenario : golden_scenarios()) {
    auto result = run_golden(scenario);
    ASSERT_TRUE(result.has_value())
        << scenario.name << ": " << result.error().message;
    const std::uint64_t fingerprint = schedule_fingerprint(*result);
    EXPECT_EQ(fingerprint, pin_for(scenario.name))
        << scenario.name << ": planner window-1 schedule diverged from the "
        << "pre-refactor pin; actual fingerprint 0x" << std::hex
        << fingerprint;
  }
}

TEST(PlannerWindows, ShardedWorkerCountNeverChangesTheSchedule) {
  // For each lookahead window the 4-region sharded replay must be
  // byte-identical across 1/2/4 worker threads: threads stay a pure
  // performance knob with the planner in the loop.
  for (const std::string& name : branch_scenarios()) {
    const GoldenScenario scenario = scenario_named(name);
    const auto stream = golden_stream(scenario);
    for (std::uint32_t window : {1u, 4u, 16u}) {
      std::optional<std::uint64_t> expected;
      for (std::uint32_t threads : {1u, 2u, 4u}) {
        ServiceConfig config = scenario.config;
        config.planner.window = window;
        config.sharding.regions = 4;
        config.sharding.threads = threads;
        const std::uint64_t fingerprint = run_fingerprint(config, stream);
        if (!expected.has_value()) expected = fingerprint;
        EXPECT_EQ(fingerprint, *expected)
            << name << " window " << window << " threads " << threads;
      }
    }
  }
}

TEST(PlannerCache, PlanCacheNeverChangesTheSchedule) {
  // The memoized plan cache is transparent: schedules are identical
  // with it on or off, at window 1 and under lookahead.
  for (const std::string& name : branch_scenarios()) {
    const GoldenScenario scenario = scenario_named(name);
    const auto stream = golden_stream(scenario);
    for (std::uint32_t window : {1u, 4u}) {
      ServiceConfig off = scenario.config;
      off.planner.window = window;
      ServiceConfig on = off;
      on.planner.plan_cache = true;
      EXPECT_EQ(run_fingerprint(off, stream), run_fingerprint(on, stream))
          << name << " window " << window;
    }
  }
}

TEST(PlannerCache, SteadyStateTwinRunReplaysItsPlans) {
  // The same stream twice through one scheduler revisits the same
  // (window, fleet state) keys: the second run must replay nearly every
  // plan from the cache and still produce the identical schedule.
  const GoldenScenario scenario = scenario_named("least-loaded");
  const auto stream = golden_stream(scenario);
  ServiceConfig config = scenario.config;
  config.planner.window = 4;
  config.planner.plan_cache = true;
  config.planner.plan_cache_capacity = 1 << 16;
  OnlineScheduler scheduler(config);
  auto first = scheduler.run(stream);
  ASSERT_TRUE(first.has_value()) << first.error().message;
  auto second = scheduler.run(stream);
  ASSERT_TRUE(second.has_value()) << second.error().message;
  EXPECT_EQ(schedule_fingerprint(*first), schedule_fingerprint(*second));
  // Metrics are per-run deltas, so this is the second run's own rate.
  EXPECT_GT(second->metrics.plan_cache_hit_rate(), 0.9)
      << second->metrics.plan_cache_hits << " hits / "
      << second->metrics.plan_cache_misses << " misses";
}

Submission golden_head() {
  auto stream = make_submission_stream(golden_stream_params());
  EXPECT_TRUE(stream.has_value());
  return stream->front();
}

TEST(PlannerCacheKey, DeviceFingerprintsKeyThePlan) {
  // Regression: a plan keyed on an optane-gen1 fleet must never replay
  // on a dram-like fleet — the per-node device fingerprints are part of
  // the key even when every other input matches.
  ServiceConfig mixed = golden_config(PlacementPolicy::kRecommenderAware);
  mixed.node_specs = golden_hetero_specs(mixed.nodes);
  ServiceConfig dram = mixed;
  for (auto& spec : dram.node_specs) {
    spec.backend_name = "dram-like";
    spec.devices = *devices::parse_backend("dram-like");
  }
  const Planner mixed_planner(mixed, 0, mixed.nodes);
  const Planner dram_planner(dram, 0, dram.nodes);
  const Fleet fleet(mixed.nodes);
  const Submission head = golden_head();
  const Submission* window[] = {&head};
  EXPECT_NE(mixed_planner.cache_key(fleet, window, 0),
            dram_planner.cache_key(fleet, window, 0));
}

TEST(PlannerCacheKey, ResidencyStateKeysThePlan) {
  // Regression: a plan made against a roomy capacity pool must never
  // replay on a near-full one — per-socket free/evictable bytes are
  // part of the key.
  ServiceConfig config = golden_config(PlacementPolicy::kCapacityAware);
  config.capacity.pmem_per_socket = static_cast<Bytes>(6e9);
  const Planner planner(config, 0, config.nodes);
  const std::vector<std::vector<Bytes>> caps(
      config.nodes, std::vector<Bytes>(2, static_cast<Bytes>(6e9)));
  Fleet roomy(config.nodes);
  roomy.init_residency(caps);
  Fleet near_full(config.nodes);
  near_full.init_residency(caps);
  for (std::uint32_t node = 0; node < config.nodes; ++node) {
    for (std::uint32_t socket = 0; socket < 2; ++socket) {
      ASSERT_TRUE(near_full.residency()
                      .acquire(node, socket, static_cast<Bytes>(5.9e9))
                      .has_value());
    }
  }
  const Submission head = golden_head();
  const Submission* window[] = {&head};
  EXPECT_NE(planner.cache_key(roomy, window, 0),
            planner.cache_key(near_full, window, 0));
}

TEST(PlannerCacheKey, IdleLoadRankingKeysThePlanNotAbsoluteBusyTime) {
  // The key captures the idle nodes' load *order*, not their absolute
  // busy nanoseconds: a fleet whose history preserved the ranking maps
  // to the same key (that is what makes steady-state traffic hit),
  // while a reshuffled ranking maps to a different one.
  const ServiceConfig config = golden_config(PlacementPolicy::kLeastLoaded);
  const Planner planner(config, 0, config.nodes);
  const Submission head = golden_head();
  const Submission* window[] = {&head};

  auto worked_fleet = [&](bool reverse_ranking) {
    Fleet fleet(config.nodes);
    for (std::uint32_t node = 0; node < fleet.size(); ++node) {
      const std::uint32_t rank =
          reverse_ranking ? fleet.size() - node : node + 1;
      RunningTask task;
      task.remaining_ns = 10ull * rank;
      fleet.start(SlotRef{node, 0}, 0, 10ull * rank, std::move(task));
      (void)fleet.complete(SlotRef{node, 0});
    }
    return fleet;
  };

  const Fleet fresh(config.nodes);
  const Fleet same_ranking = worked_fleet(false);
  const Fleet reshuffled = worked_fleet(true);
  const SimTime later = 1000;  // past every slot's free_at
  EXPECT_EQ(planner.cache_key(fresh, window, 0),
            planner.cache_key(same_ranking, window, later));
  EXPECT_NE(planner.cache_key(fresh, window, 0),
            planner.cache_key(reshuffled, window, later));
}

}  // namespace
}  // namespace pmemflow::service
