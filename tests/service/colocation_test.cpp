#include "service/colocation.hpp"

#include <gtest/gtest.h>

#include "service/scheduler.hpp"
#include "workloads/synthetic.hpp"

namespace pmemflow::service {
namespace {

/// Write-heavy class: bulk simulation output, near-free analytics.
workflow::WorkflowSpec write_heavy_class(std::uint32_t ranks = 8) {
  workloads::SyntheticSimulation::Params sim;
  sim.object_size = 8 * kMiB;
  sim.objects_per_rank = 6;
  sim.compute_ns = 0.0;
  sim.name = "wh-sim";
  workloads::SyntheticAnalytics::Params analytics;
  analytics.compute_ns_per_object = 1.0e6;
  analytics.name = "wh-ana";
  auto spec = workloads::make_synthetic_workflow(sim, analytics, ranks,
                                                 /*iterations=*/2);
  spec.label = "write-heavy";
  return spec;
}

/// Read-heavy class: compute-bound simulation, read-only analytics.
workflow::WorkflowSpec read_heavy_class(std::uint32_t ranks = 8) {
  workloads::SyntheticSimulation::Params sim;
  sim.object_size = 8 * kMiB;
  sim.objects_per_rank = 6;
  sim.compute_ns = 2.5e7;
  sim.name = "rh-sim";
  workloads::SyntheticAnalytics::Params analytics;
  analytics.compute_ns_per_object = 0.0;
  analytics.name = "rh-ana";
  auto spec = workloads::make_synthetic_workflow(sim, analytics, ranks,
                                                 /*iterations=*/2);
  spec.label = "read-heavy";
  return spec;
}

/// Sub-stripe objects: interference is per-DIMM collision territory the
/// pairwise model does not capture, so such classes never pack.
workflow::WorkflowSpec small_object_class() {
  workloads::SyntheticSimulation::Params sim;
  sim.object_size = 2 * kKiB;
  sim.objects_per_rank = 64;
  sim.compute_ns = 0.0;
  sim.name = "small-sim";
  workloads::SyntheticAnalytics::Params analytics;
  analytics.compute_ns_per_object = 0.0;
  analytics.name = "small-ana";
  auto spec = workloads::make_synthetic_workflow(sim, analytics, /*ranks=*/8,
                                                 /*iterations=*/2);
  spec.label = "small-objects";
  return spec;
}

std::shared_ptr<const CachedProfile> profile_of(
    ProfileCache& cache, const workflow::WorkflowSpec& spec) {
  auto profile = cache.lookup(spec);
  EXPECT_TRUE(profile.has_value());
  return *profile;
}

std::vector<Submission> alternating_stream(
    const std::vector<workflow::WorkflowSpec>& classes, std::uint64_t count,
    SimDuration gap_ns) {
  std::vector<Submission> stream;
  for (std::uint64_t i = 0; i < count; ++i) {
    Submission submission;
    submission.id = i;
    submission.spec = classes[i % classes.size()];
    submission.arrival_ns = static_cast<SimTime>(i) * gap_ns;
    stream.push_back(std::move(submission));
  }
  return stream;
}

TEST(Colocation, IoOrientationClassifiesTheStraddleClasses) {
  ProfileCache cache(8);
  const auto wh = profile_of(cache, write_heavy_class());
  const auto rh = profile_of(cache, read_heavy_class());
  EXPECT_EQ(io_orientation(wh->profile, 1.2), IoOrientation::kWriteHeavy);
  EXPECT_EQ(io_orientation(rh->profile, 1.2), IoOrientation::kReadHeavy);
}

TEST(Colocation, OnlyOppositeOrientationsAreCompatible) {
  ProfileCache cache(8);
  const auto wh = profile_of(cache, write_heavy_class());
  const auto rh = profile_of(cache, read_heavy_class());
  const ColocationParams params;
  EXPECT_TRUE(colocation_compatible(*wh, *rh, params));
  EXPECT_TRUE(colocation_compatible(*rh, *wh, params));
  EXPECT_FALSE(colocation_compatible(*wh, *wh, params));
  EXPECT_FALSE(colocation_compatible(*rh, *rh, params));
}

TEST(Colocation, SmallObjectClassesNeverPack) {
  ProfileCache cache(8);
  const auto small = profile_of(cache, small_object_class());
  const auto rh = profile_of(cache, read_heavy_class());
  ASSERT_TRUE(small->profile.features.small_objects);
  EXPECT_FALSE(colocation_compatible(*small, *rh, ColocationParams{}));
  EXPECT_FALSE(colocation_compatible(*rh, *small, ColocationParams{}));
}

TEST(InterferenceTable, MemoizesPerUnorderedPair) {
  ProfileCache cache(8);
  const auto wh_spec = write_heavy_class();
  const auto rh_spec = read_heavy_class();
  const auto wh = profile_of(cache, wh_spec);
  const auto rh = profile_of(cache, rh_spec);

  InterferenceTable table;
  auto forward = table.lookup(*wh, wh_spec, *rh, rh_spec);
  ASSERT_TRUE(forward.has_value());
  EXPECT_EQ(table.stats().measurements, 1u);
  EXPECT_EQ(table.stats().hits, 0u);
  EXPECT_TRUE(forward->feasible);
  EXPECT_GE(forward->slowdown_a, 1.0);
  EXPECT_GE(forward->slowdown_b, 1.0);

  // Swapped argument order hits the same memo entry, slowdowns oriented
  // to the call.
  auto backward = table.lookup(*rh, rh_spec, *wh, wh_spec);
  ASSERT_TRUE(backward.has_value());
  EXPECT_EQ(table.stats().measurements, 1u);
  EXPECT_EQ(table.stats().hits, 1u);
  EXPECT_DOUBLE_EQ(backward->slowdown_a, forward->slowdown_b);
  EXPECT_DOUBLE_EQ(backward->slowdown_b, forward->slowdown_a);
  EXPECT_EQ(table.size(), 1u);
}

TEST(InterferenceTable, JointRankOvercommitIsInfeasibleNotAnError) {
  // 16 + 16 mirrored ranks want 32 cores per socket; the testbed has
  // 28. The pair must be memoized as infeasible, not simulated into an
  // allocation failure.
  ProfileCache cache(8);
  const auto wh_spec = write_heavy_class(16);
  const auto rh_spec = read_heavy_class(16);
  const auto wh = profile_of(cache, wh_spec);
  const auto rh = profile_of(cache, rh_spec);

  InterferenceTable table;
  auto pair = table.lookup(*wh, wh_spec, *rh, rh_spec);
  ASSERT_TRUE(pair.has_value());
  EXPECT_FALSE(pair->feasible);
  // Infeasibility is memoized too: the next lookup is a hit.
  ASSERT_TRUE(table.lookup(*wh, wh_spec, *rh, rh_spec).has_value());
  EXPECT_EQ(table.stats().hits, 1u);
}

TEST(ColocationScheduler, PacksACompatiblePairOntoOneNode) {
  const auto stream = alternating_stream(
      {write_heavy_class(), read_heavy_class()}, 2, 1 * kMillisecond);

  ServiceConfig config;
  config.nodes = 1;
  config.queue_capacity = 4;
  config.policy = PlacementPolicy::kColocationAware;

  auto result = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->completions.size(), 2u);
  EXPECT_EQ(result->metrics.colocations, 1u);
  // Both tenants ran on node 0, on different slots, and each counted
  // the pairing once.
  const auto& a = result->completions[0];
  const auto& b = result->completions[1];
  EXPECT_EQ(a.node, 0u);
  EXPECT_EQ(b.node, 0u);
  EXPECT_NE(a.slot, b.slot);
  EXPECT_EQ(a.colocations, 1u);
  EXPECT_EQ(b.colocations, 1u);
}

TEST(ColocationScheduler, EmptyNodesArePreferredOverPacking) {
  // Two compatible submissions, two nodes: solo is always at least as
  // fast, so the pair must spread out instead of packing.
  const auto stream = alternating_stream(
      {write_heavy_class(), read_heavy_class()}, 2, 1 * kMillisecond);

  ServiceConfig config;
  config.nodes = 2;
  config.queue_capacity = 4;
  config.policy = PlacementPolicy::kColocationAware;

  auto result = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->metrics.colocations, 0u);
  EXPECT_NE(result->completions[0].node, result->completions[1].node);
}

TEST(ColocationScheduler, SameDirectionStreamNeverPacks) {
  const auto stream =
      alternating_stream({write_heavy_class()}, 6, 1 * kMillisecond);

  ServiceConfig config;
  config.nodes = 2;
  config.queue_capacity = 8;
  config.policy = PlacementPolicy::kColocationAware;

  auto result = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->metrics.completed, 6u);
  EXPECT_EQ(result->metrics.colocations, 0u);
  for (const auto& record : result->completions) {
    EXPECT_EQ(record.slot, 0u);
    EXPECT_EQ(record.colocations, 0u);
  }
}

TEST(ColocationScheduler, WorkConservationAcrossInterferenceRetiming) {
  // The remaining-time accounting must survive settle/retime rounding:
  // every completion executed exactly its configured runtime of work,
  // packed or not.
  const auto stream = alternating_stream(
      {write_heavy_class(), read_heavy_class()}, 24, 5 * kMillisecond);

  ServiceConfig config;
  config.nodes = 2;
  config.queue_capacity = stream.size();
  config.defer_watermark = 1.0;
  config.policy = PlacementPolicy::kColocationAware;

  auto result = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->metrics.completed, stream.size());
  EXPECT_GT(result->metrics.colocations, 0u);
  for (const auto& record : result->completions) {
    EXPECT_EQ(record.work_executed_ns, record.config_runtime_ns)
        << record.id;
    EXPECT_GE(record.finish_ns - record.start_ns, record.config_runtime_ns)
        << record.id;
  }
}

TEST(ColocationScheduler, ReplayIsByteIdentical) {
  const auto stream = alternating_stream(
      {write_heavy_class(), read_heavy_class()}, 16, 2 * kMillisecond);

  ServiceConfig config;
  config.nodes = 2;
  config.queue_capacity = stream.size();
  config.policy = PlacementPolicy::kColocationAware;

  auto a = OnlineScheduler(config).run(stream);
  auto b = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(a->completions.size(), b->completions.size());
  for (std::size_t i = 0; i < a->completions.size(); ++i) {
    const auto& x = a->completions[i];
    const auto& y = b->completions[i];
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.node, y.node);
    EXPECT_EQ(x.slot, y.slot);
    EXPECT_EQ(x.start_ns, y.start_ns);
    EXPECT_EQ(x.finish_ns, y.finish_ns);
    EXPECT_EQ(x.work_executed_ns, y.work_executed_ns);
    EXPECT_EQ(x.colocations, y.colocations);
  }
  EXPECT_EQ(a->metrics.interference_overhead_ns,
            b->metrics.interference_overhead_ns);
}

TEST(ColocationScheduler, InterferenceTablePersistsAcrossRuns) {
  const auto stream = alternating_stream(
      {write_heavy_class(), read_heavy_class()}, 8, 2 * kMillisecond);

  ServiceConfig config;
  config.nodes = 1;
  config.queue_capacity = stream.size();
  config.policy = PlacementPolicy::kColocationAware;

  OnlineScheduler scheduler(config);
  ASSERT_TRUE(scheduler.run(stream).has_value());
  const auto measurements = scheduler.interference().stats().measurements;
  EXPECT_GT(measurements, 0u);
  ASSERT_TRUE(scheduler.run(stream).has_value());
  // Same class pair: the second run never re-measures.
  EXPECT_EQ(scheduler.interference().stats().measurements, measurements);
}

}  // namespace
}  // namespace pmemflow::service
