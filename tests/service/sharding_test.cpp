#include "service/sharding.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/csv.hpp"
#include "service/arrivals.hpp"
#include "service/scheduler.hpp"

namespace pmemflow::service {
namespace {

ArrivalParams stream_params(std::uint64_t count = 400) {
  ArrivalParams params;
  params.count = count;
  params.classes = 8;
  params.mean_interarrival_ns = 15.0e6;
  params.seed = 42;
  return params;
}

std::vector<Submission> must_stream(const ArrivalParams& params) {
  return *make_submission_stream(params);
}

bool identical_records(const CompletionRecord& a, const CompletionRecord& b) {
  return a.id == b.id && a.label == b.label && a.priority == b.priority &&
         a.node == b.node && a.slot == b.slot && a.config == b.config &&
         a.arrival_ns == b.arrival_ns && a.start_ns == b.start_ns &&
         a.finish_ns == b.finish_ns && a.preemptions == b.preemptions &&
         a.checkpoint_ns == b.checkpoint_ns && a.restore_ns == b.restore_ns;
}

std::string csv_row(const ServiceMetrics& metrics) {
  CsvWriter csv(service_csv_header());
  append_service_csv_row(csv, "run", metrics);
  std::ostringstream out;
  csv.write(out);
  return out.str();
}

Expected<ServiceResult> run_with(const std::vector<Submission>& stream,
                                 ServiceConfig config, std::uint32_t regions,
                                 std::uint32_t threads) {
  config.sharding.regions = regions;
  config.sharding.threads = threads;
  return OnlineScheduler(config).run(stream);
}

TEST(Sharding, RoutingIsStableAndCoversAllRegions) {
  // region_of is a pure function of the id — not of stream order, node
  // count, or anything environmental.
  for (std::uint64_t id : {0ull, 1ull, 7ull, 1000ull, (1ull << 40) + 3}) {
    EXPECT_EQ(region_of(id, 4), region_of(id, 4));
    EXPECT_LT(region_of(id, 4), 4u);
    EXPECT_EQ(region_of(id, 1), 0u);
  }
  // splitmix64 spreads sequential ids: every region gets work.
  std::vector<std::uint32_t> hits(4, 0);
  for (std::uint64_t id = 0; id < 256; ++id) ++hits[region_of(id, 4)];
  for (std::uint32_t region = 0; region < 4; ++region) {
    EXPECT_GT(hits[region], 0u) << "region " << region << " starved";
  }
}

TEST(Sharding, NodeSlicesPartitionTheFleet) {
  for (std::uint32_t nodes : {4u, 7u, 8u, 13u}) {
    for (std::uint32_t regions : {1u, 2u, 3u, 4u}) {
      if (regions > nodes) continue;
      std::uint32_t total = 0;
      for (std::uint32_t r = 0; r < regions; ++r) {
        EXPECT_EQ(region_node_base(nodes, regions, r), total);
        const std::uint32_t count = region_node_count(nodes, regions, r);
        EXPECT_GE(count, 1u);
        total += count;
      }
      EXPECT_EQ(total, nodes);
    }
  }
}

TEST(Sharding, WorkerThreadsAreAPurePerformanceKnob) {
  // The tentpole contract: at a fixed region count, 1, 2, and 4 worker
  // threads produce byte-identical completions and CSV metrics.
  const auto stream = must_stream(stream_params());
  ServiceConfig config;
  config.nodes = 8;
  config.queue_capacity = stream.size();
  config.defer_watermark = 1.0;

  auto baseline = run_with(stream, config, 4, 1);
  ASSERT_TRUE(baseline.has_value());
  EXPECT_EQ(baseline->metrics.regions, 4u);
  const std::string baseline_csv = csv_row(baseline->metrics);

  for (std::uint32_t threads : {2u, 4u}) {
    auto result = run_with(stream, config, 4, threads);
    ASSERT_TRUE(result.has_value());
    ASSERT_EQ(result->completions.size(), baseline->completions.size());
    for (std::size_t i = 0; i < result->completions.size(); ++i) {
      EXPECT_TRUE(
          identical_records(result->completions[i], baseline->completions[i]))
          << "record " << i << " with " << threads << " threads";
    }
    EXPECT_EQ(csv_row(result->metrics), baseline_csv)
        << threads << " threads";
  }
}

TEST(Sharding, ThreadsIdenticalUnderPreemptionAndCapacity) {
  // The hardest replay: urgent preemptions (checkpoint/restore events)
  // plus bounded capacity pools (evictions, GC) — still byte-identical
  // across worker counts.
  ArrivalParams params = stream_params(300);
  params.urgent_fraction = 0.25;
  const auto stream = must_stream(params);

  ServiceConfig config;
  config.nodes = 4;
  config.queue_capacity = stream.size();
  config.defer_watermark = 1.0;
  config.preemption = PreemptionPolicy::kCheckpointRestore;
  config.capacity.pmem_per_socket = static_cast<Bytes>(8e9);
  config.capacity.retention.retain_versions = 2;

  auto one = run_with(stream, config, 4, 1);
  auto four = run_with(stream, config, 4, 4);
  ASSERT_TRUE(one.has_value());
  ASSERT_TRUE(four.has_value());
  EXPECT_GT(one->metrics.preemptions, 0u)
      << "stream too tame to exercise preemption";
  ASSERT_EQ(one->completions.size(), four->completions.size());
  for (std::size_t i = 0; i < one->completions.size(); ++i) {
    EXPECT_TRUE(identical_records(one->completions[i], four->completions[i]))
        << "record " << i;
  }
  EXPECT_EQ(csv_row(one->metrics), csv_row(four->metrics));
}

TEST(Sharding, OneRegionMatchesUnshardedScheduler) {
  // regions == 1 must be the classic scheduler exactly, whatever the
  // thread knob says (there is nothing to parallelize).
  const auto stream = must_stream(stream_params(200));
  ServiceConfig config;
  config.nodes = 3;
  config.queue_capacity = stream.size();
  config.defer_watermark = 1.0;

  auto classic = OnlineScheduler(config).run(stream);
  auto sharded = run_with(stream, config, 1, 4);
  ASSERT_TRUE(classic.has_value());
  ASSERT_TRUE(sharded.has_value());
  EXPECT_EQ(sharded->metrics.regions, 1u);
  EXPECT_EQ(sharded->metrics.shard_migrations, 0u);
  ASSERT_EQ(classic->completions.size(), sharded->completions.size());
  for (std::size_t i = 0; i < classic->completions.size(); ++i) {
    EXPECT_TRUE(
        identical_records(classic->completions[i], sharded->completions[i]));
  }
  EXPECT_EQ(csv_row(classic->metrics), csv_row(sharded->metrics));
}

TEST(Sharding, ShardedTotalsMatchSingleShardTotals) {
  // Conservation across the region split: nothing is lost or double
  // counted. Completions + drops account for the whole stream, and the
  // sharded aggregate sums per-region counters deterministically.
  const auto stream = must_stream(stream_params());
  ServiceConfig config;
  config.nodes = 8;
  config.queue_capacity = stream.size();
  config.defer_watermark = 1.0;

  auto single = run_with(stream, config, 1, 1);
  auto sharded = run_with(stream, config, 4, 4);
  ASSERT_TRUE(single.has_value());
  ASSERT_TRUE(sharded.has_value());

  EXPECT_EQ(single->metrics.completed + single->metrics.dropped,
            stream.size());
  EXPECT_EQ(sharded->metrics.completed + sharded->metrics.dropped,
            stream.size());
  // Same work characterized either way: the per-class solves are
  // identical in total even though four caches did them.
  EXPECT_EQ(sharded->metrics.node_utilization.size(), config.nodes);
  EXPECT_EQ(single->metrics.node_utilization.size(), config.nodes);
  // Every submission completes exactly once, under both splits.
  auto ids_of = [](const ServiceResult& result) {
    std::vector<std::uint64_t> ids;
    ids.reserve(result.completions.size());
    for (const auto& record : result.completions) ids.push_back(record.id);
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  EXPECT_EQ(ids_of(*single), ids_of(*sharded));
}

TEST(Sharding, MetricsMergeSumsRegionCounters) {
  // The sharded des_events/admission totals must equal the sum of what
  // the same stream costs run region-by-region: replay each region's
  // share alone on its slice and compare. One epoch wider than the whole
  // simulation means no barrier ever fires mid-run, so no migration can
  // perturb the decomposition.
  const auto stream = must_stream(stream_params(200));
  const std::uint32_t regions = 4;
  ServiceConfig config;
  config.nodes = 8;
  config.queue_capacity = stream.size();
  config.defer_watermark = 1.0;
  config.sharding.epoch_ns = SimDuration{1} << 60;

  auto sharded = run_with(stream, config, regions, 2);
  ASSERT_TRUE(sharded.has_value());
  ASSERT_EQ(sharded->metrics.shard_migrations, 0u)
      << "per-region replay below assumes no cross-region migration; "
         "loosen the stream if this starts migrating";

  std::uint64_t des_events = 0, admitted = 0, completed = 0;
  pmemsim::AllocatorCounters allocator;
  for (std::uint32_t r = 0; r < regions; ++r) {
    std::vector<Submission> share;
    for (const Submission& submission : stream) {
      if (region_of(submission.id, regions) == r) share.push_back(submission);
    }
    ServiceConfig slice = config;
    slice.nodes = region_node_count(config.nodes, regions, r);
    auto result = OnlineScheduler(slice).run(share);
    ASSERT_TRUE(result.has_value());
    des_events += result->metrics.des_events;
    admitted += result->metrics.admission.admitted;
    completed += result->metrics.completed;
    allocator += result->metrics.allocator;
  }
  EXPECT_EQ(sharded->metrics.des_events, des_events);
  EXPECT_EQ(sharded->metrics.admission.admitted, admitted);
  EXPECT_EQ(sharded->metrics.completed, completed);
  EXPECT_EQ(sharded->metrics.allocator, allocator);
  EXPECT_EQ(sharded->metrics.rate_solves(), allocator.solves);
}

TEST(Sharding, MemoizationToggleKeepsScheduleIdentical) {
  // Per-allocator memoization is a pure wall-clock optimization even
  // under sharding: on vs off cannot move a simulated nanosecond.
  const auto stream = must_stream(stream_params(200));
  ServiceConfig config;
  config.nodes = 8;
  config.queue_capacity = stream.size();
  config.defer_watermark = 1.0;
  config.sharding.regions = 4;
  config.sharding.threads = 2;

  ServiceConfig uncached_config = config;
  uncached_config.allocator_memoization = false;
  auto memoized = OnlineScheduler(config).run(stream);
  auto uncached = OnlineScheduler(uncached_config).run(stream);
  ASSERT_TRUE(memoized.has_value());
  ASSERT_TRUE(uncached.has_value());
  ASSERT_EQ(memoized->completions.size(), uncached->completions.size());
  for (std::size_t i = 0; i < memoized->completions.size(); ++i) {
    EXPECT_TRUE(identical_records(memoized->completions[i],
                                  uncached->completions[i]));
  }
  EXPECT_GT(memoized->metrics.allocator.cache_hits, 0u);
  EXPECT_EQ(uncached->metrics.allocator.cache_hits, 0u);
  EXPECT_GT(uncached->metrics.allocator.solves,
            memoized->metrics.allocator.solves);
}

TEST(Sharding, RegionsClampToNodeCount) {
  const auto stream = must_stream(stream_params(100));
  ServiceConfig config;
  config.nodes = 2;
  config.queue_capacity = stream.size();
  config.defer_watermark = 1.0;

  auto result = run_with(stream, config, 16, 8);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->metrics.regions, 2u);
  EXPECT_EQ(result->metrics.completed + result->metrics.dropped,
            stream.size());
}

}  // namespace
}  // namespace pmemflow::service
