#include "service/arrivals.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "workflow/model.hpp"

namespace pmemflow::service {
namespace {

ArrivalParams good_params() {
  ArrivalParams params;
  params.count = 100;
  params.classes = 5;
  params.mean_interarrival_ns = 10.0e6;
  params.seed = 7;
  params.urgent_fraction = 0.2;
  params.batch_fraction = 0.3;
  return params;
}

TEST(ArrivalParamsValidation, GoodParamsPass) {
  EXPECT_TRUE(validate_arrival_params(good_params()).has_value());
  EXPECT_TRUE(make_submission_stream(good_params()).has_value());
}

TEST(ArrivalParamsValidation, ZeroCountRejected) {
  auto params = good_params();
  params.count = 0;
  auto stream = make_submission_stream(params);
  ASSERT_FALSE(stream.has_value());
  EXPECT_NE(stream.error().message.find("count"), std::string::npos);
}

TEST(ArrivalParamsValidation, ZeroClassesRejected) {
  auto params = good_params();
  params.classes = 0;
  auto stream = make_submission_stream(params);
  ASSERT_FALSE(stream.has_value());
  EXPECT_NE(stream.error().message.find("classes"), std::string::npos);
}

TEST(ArrivalParamsValidation, NonPositiveMeanGapRejected) {
  for (const double gap : {0.0, -5.0e6}) {
    auto params = good_params();
    params.mean_interarrival_ns = gap;
    auto stream = make_submission_stream(params);
    ASSERT_FALSE(stream.has_value()) << gap;
    EXPECT_NE(stream.error().message.find("mean_interarrival_ns"),
              std::string::npos);
  }
}

TEST(ArrivalParamsValidation, InfiniteMeanGapRejected) {
  auto params = good_params();
  params.mean_interarrival_ns = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(make_submission_stream(params).has_value());
}

TEST(ArrivalParamsValidation, FractionSumAboveOneRejected) {
  auto params = good_params();
  params.urgent_fraction = 0.6;
  params.batch_fraction = 0.5;
  auto stream = make_submission_stream(params);
  ASSERT_FALSE(stream.has_value());
  EXPECT_NE(stream.error().message.find("must not exceed 1"),
            std::string::npos);
}

TEST(ArrivalParamsValidation, NegativeOrOverOneFractionRejected) {
  auto params = good_params();
  params.urgent_fraction = -0.1;
  EXPECT_FALSE(make_submission_stream(params).has_value());
  params = good_params();
  params.batch_fraction = 1.5;
  EXPECT_FALSE(make_submission_stream(params).has_value());
}

TEST(ArrivalStream, ArrivalsNondecreasingAndIdsSequential) {
  auto stream = make_submission_stream(good_params());
  ASSERT_TRUE(stream.has_value());
  ASSERT_EQ(stream->size(), good_params().count);
  SimTime previous = 0;
  for (std::size_t i = 0; i < stream->size(); ++i) {
    EXPECT_EQ((*stream)[i].id, i);
    EXPECT_GE((*stream)[i].arrival_ns, previous);
    previous = (*stream)[i].arrival_ns;
  }
}

// The trace subsystem's class-binding contract: a trace that names pool
// classes by index or fingerprint can only be replayed faithfully if
// make_class_pool is a pure function of (classes, seed).
TEST(ClassPool, SameSeedYieldsIdenticalPool) {
  const auto once = make_class_pool(8, /*seed=*/123);
  const auto again = make_class_pool(8, /*seed=*/123);
  ASSERT_EQ(once.size(), again.size());
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_TRUE(once[i] == again[i]) << "class " << i;
    EXPECT_EQ(workflow::class_fingerprint(once[i]),
              workflow::class_fingerprint(again[i]));
    EXPECT_EQ(once[i].label, again[i].label);
  }
}

TEST(ClassPool, DifferentSeedsYieldDistinctFingerprints) {
  const auto a = make_class_pool(8, /*seed=*/123);
  const auto b = make_class_pool(8, /*seed=*/456);
  std::set<std::uint64_t> fingerprints_a, fingerprints_b;
  for (const auto& spec : a) {
    fingerprints_a.insert(workflow::class_fingerprint(spec));
  }
  for (const auto& spec : b) {
    fingerprints_b.insert(workflow::class_fingerprint(spec));
  }
  // Different seeds must not generate the same class set: no overlap
  // (the synthetic payload seeds alone make collisions implausible).
  for (const auto fingerprint : fingerprints_a) {
    EXPECT_EQ(fingerprints_b.count(fingerprint), 0u);
  }
}

TEST(ClassPool, FingerprintsWithinOnePoolAreDistinct) {
  const auto pool = make_class_pool(16, /*seed=*/99);
  std::set<std::uint64_t> fingerprints;
  for (const auto& spec : pool) {
    fingerprints.insert(workflow::class_fingerprint(spec));
  }
  EXPECT_EQ(fingerprints.size(), pool.size());
}

TEST(ClassPool, PrefixStability) {
  // Growing the pool keeps the existing classes: a trace recorded
  // against a 6-class pool still binds by index against an 8-class pool
  // with the same seed.
  const auto small = make_class_pool(6, /*seed=*/123);
  const auto large = make_class_pool(8, /*seed=*/123);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(workflow::class_fingerprint(small[i]),
              workflow::class_fingerprint(large[i]))
        << "class " << i;
  }
}

}  // namespace
}  // namespace pmemflow::service
