// Checkpoint-based preemption & migration (tentpole of PR 2).
//
// Verifies the three contracts the preemption model makes:
//   - checkpoint-cost arithmetic matches hand-computed values (snapshot
//     volume × calibrated device bandwidths);
//   - a migrated resume restores the remaining runtime exactly — no
//     work is lost or invented across preempt/requeue/resume;
//   - the schedule stays deterministic with cancellable finish events
//     and drain timers in play.
#include "service/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "service/arrivals.hpp"
#include "workloads/synthetic.hpp"

namespace pmemflow::service {
namespace {

/// A compute-heavy, I/O-light class: long runtime (lots of room to
/// preempt) but a small in-flight snapshot (cheap to checkpoint), so
/// the displacement decision rule is comfortably satisfied.
workflow::WorkflowSpec long_quiet_class() {
  workloads::SyntheticSimulation::Params sim;
  sim.object_size = 64 * kKiB;
  sim.objects_per_rank = 32;
  sim.compute_ns = 5.0e8;
  sim.seed = 7;
  sim.name = "preempt-sim";
  workloads::SyntheticAnalytics::Params analytics;
  analytics.compute_ns_per_object = 0.0;
  analytics.name = "preempt-ana";
  auto spec = workloads::make_synthetic_workflow(sim, analytics, /*ranks=*/8,
                                                 /*iterations=*/2);
  spec.label = "preempt-class";
  return spec;
}

Submission submit(std::uint64_t id, const workflow::WorkflowSpec& spec,
                  SimTime arrival_ns, Priority priority) {
  Submission submission;
  submission.id = id;
  submission.spec = spec;
  submission.arrival_ns = arrival_ns;
  submission.priority = priority;
  return submission;
}

/// Hand-computed checkpoint/restore/migration costs for a victim with
/// `remaining` of `full` work left — the same arithmetic the scheduler
/// is specified to perform.
struct CheckpointCosts {
  Bytes snapshot = 0;
  SimDuration checkpoint_ns = 0;
  SimDuration restore_ns = 0;
  SimDuration migration_ns = 0;
};

CheckpointCosts expected_costs(const CachedProfile& profile,
                               const workflow::WorkflowSpec& spec,
                               const CheckpointParams& params,
                               SimDuration remaining, SimDuration full) {
  CheckpointCosts costs;
  const double fraction =
      static_cast<double>(remaining) / static_cast<double>(full);
  auto in_flight = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(spec.iterations) * fraction));
  in_flight = std::clamp<std::uint64_t>(in_flight, 1, spec.iterations);
  costs.snapshot = profile.profile.simulation.bytes_per_iteration *
                   spec.ranks * in_flight;
  costs.checkpoint_ns =
      transfer_time(costs.snapshot, params.checkpoint_write_bw);
  costs.restore_ns = transfer_time(costs.snapshot, params.restore_read_bw);
  costs.migration_ns = transfer_time(costs.snapshot, params.migration_bw);
  return costs;
}

const CompletionRecord& record_of(const ServiceResult& result,
                                  std::uint64_t id) {
  auto it = std::find_if(result.completions.begin(), result.completions.end(),
                         [id](const CompletionRecord& r) { return r.id == id; });
  EXPECT_NE(it, result.completions.end()) << "no completion for id " << id;
  return *it;
}

ServiceConfig preemption_config(std::uint32_t nodes) {
  ServiceConfig config;
  config.nodes = nodes;
  config.queue_capacity = 64;
  config.defer_watermark = 1.0;
  config.policy = PlacementPolicy::kLeastLoaded;
  config.preemption = PreemptionPolicy::kCheckpointRestore;
  return config;
}

TEST(Preemption, CheckpointCostArithmeticMatchesHandComputed) {
  const auto config = preemption_config(/*nodes=*/1);
  OnlineScheduler scheduler(config);
  const auto spec = long_quiet_class();
  auto profile = scheduler.cache().characterize(spec);
  ASSERT_TRUE(profile.has_value());
  const SimDuration runtime =
      profile->runtime_ns[config_index(config.fixed_config)];
  ASSERT_GT(runtime, 0u);

  // Batch occupies the lone node; an urgent lands mid-run.
  const SimTime urgent_at = runtime / 2;
  const std::vector<Submission> stream = {
      submit(0, spec, 0, Priority::kBatch),
      submit(1, spec, urgent_at, Priority::kUrgent),
  };

  const SimDuration remaining = runtime - urgent_at;
  const auto costs = expected_costs(*profile, spec, config.checkpoint,
                                    remaining, runtime);
  // Preconditions of the displacement rule: the urgent's wait saved
  // (runtime - urgent_at - checkpoint) must exceed checkpoint + restore.
  ASSERT_GT(remaining,
            2 * costs.checkpoint_ns + costs.restore_ns);

  auto result = scheduler.run(stream);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->completions.size(), 2u);

  const CompletionRecord& victim = record_of(*result, 0);
  const CompletionRecord& urgent = record_of(*result, 1);

  // Victim checkpoint costs, to the nanosecond.
  EXPECT_EQ(victim.preemptions, 1u);
  EXPECT_EQ(victim.migrations, 0u);  // one node: resume is local
  EXPECT_EQ(victim.checkpoint_ns, costs.checkpoint_ns);
  EXPECT_EQ(victim.restore_ns, costs.restore_ns);

  // The urgent waits exactly one checkpoint drain, nothing more.
  EXPECT_EQ(urgent.start_ns, urgent_at + costs.checkpoint_ns);
  EXPECT_EQ(urgent.queue_delay_ns(), costs.checkpoint_ns);
  EXPECT_EQ(urgent.finish_ns, urgent.start_ns + runtime);
  EXPECT_EQ(urgent.preemptions, 0u);

  // Victim resumes when the urgent finishes, pays the restore, and runs
  // exactly its remaining work.
  EXPECT_EQ(victim.start_ns, 0u);
  EXPECT_EQ(victim.finish_ns,
            urgent.finish_ns + costs.restore_ns + remaining);
  EXPECT_EQ(victim.config_runtime_ns, runtime);
  EXPECT_EQ(victim.work_executed_ns, runtime);

  // Aggregates agree with the per-record story.
  EXPECT_EQ(result->metrics.preemptions, 1u);
  EXPECT_EQ(result->metrics.migrations, 0u);
  EXPECT_EQ(result->metrics.checkpoint_overhead_ns, costs.checkpoint_ns);
  EXPECT_EQ(result->metrics.restore_overhead_ns, costs.restore_ns);
  EXPECT_GT(result->metrics.victim_slowdown.max, 1.0);
}

TEST(Preemption, MigrationRestoresRemainingRuntimeExactly) {
  const auto config = preemption_config(/*nodes=*/2);
  OnlineScheduler scheduler(config);
  const auto spec = long_quiet_class();
  auto profile = scheduler.cache().characterize(spec);
  ASSERT_TRUE(profile.has_value());
  const SimDuration runtime =
      profile->runtime_ns[config_index(config.fixed_config)];

  // A and B fill both nodes; the urgent preempts A off node 0 (equal
  // checkpoint cost, lowest index). Node 1 frees first (B started
  // earlier than the urgent), so A resumes there: a migration.
  const SimTime b_at = 1 * kMillisecond;
  const SimTime urgent_at = (2 * runtime) / 3;
  ASSERT_GT(urgent_at, b_at);
  const std::vector<Submission> stream = {
      submit(0, spec, 0, Priority::kBatch),
      submit(1, spec, b_at, Priority::kBatch),
      submit(2, spec, urgent_at, Priority::kUrgent),
  };

  const SimDuration remaining = runtime - urgent_at;
  const auto costs = expected_costs(*profile, spec, config.checkpoint,
                                    remaining, runtime);
  ASSERT_GT(runtime - urgent_at, 2 * costs.checkpoint_ns + costs.restore_ns);

  auto result = scheduler.run(stream);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->completions.size(), 3u);

  const CompletionRecord& victim = record_of(*result, 0);
  const CompletionRecord& untouched = record_of(*result, 1);
  const CompletionRecord& urgent = record_of(*result, 2);

  EXPECT_EQ(urgent.node, 0u);
  EXPECT_EQ(urgent.start_ns, urgent_at + costs.checkpoint_ns);

  EXPECT_EQ(untouched.preemptions, 0u);
  EXPECT_EQ(untouched.node, 1u);
  EXPECT_EQ(untouched.finish_ns, b_at + runtime);

  // The victim migrated: restored on node 1 when B finished, paying
  // restore + interconnect transfer, then ran exactly what it had left.
  EXPECT_EQ(victim.preemptions, 1u);
  EXPECT_EQ(victim.migrations, 1u);
  EXPECT_EQ(victim.node, 1u);
  EXPECT_EQ(victim.checkpoint_ns, costs.checkpoint_ns);
  EXPECT_EQ(victim.restore_ns, costs.restore_ns + costs.migration_ns);
  EXPECT_EQ(victim.finish_ns, b_at + runtime + costs.restore_ns +
                                  costs.migration_ns + remaining);
  EXPECT_EQ(victim.work_executed_ns, runtime);
  EXPECT_EQ(result->metrics.migrations, 1u);
}

TEST(Preemption, SameStreamTwiceIsByteIdentical) {
  ArrivalParams params;
  params.count = 300;
  params.classes = 6;
  params.mean_interarrival_ns = 10.0e6;
  params.seed = 42;
  params.urgent_fraction = 0.25;
  params.batch_fraction = 0.45;
  const auto stream = *make_submission_stream(params);

  auto config = preemption_config(/*nodes=*/2);
  config.queue_capacity = stream.size();

  auto a = OnlineScheduler(config).run(stream);
  auto b = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // The stream must actually exercise the machinery under test.
  ASSERT_GT(a->metrics.preemptions, 0u);

  ASSERT_EQ(a->completions.size(), b->completions.size());
  for (std::size_t i = 0; i < a->completions.size(); ++i) {
    const CompletionRecord& x = a->completions[i];
    const CompletionRecord& y = b->completions[i];
    EXPECT_EQ(x.id, y.id) << i;
    EXPECT_EQ(x.node, y.node) << i;
    EXPECT_EQ(x.start_ns, y.start_ns) << i;
    EXPECT_EQ(x.finish_ns, y.finish_ns) << i;
    EXPECT_EQ(x.preemptions, y.preemptions) << i;
    EXPECT_EQ(x.migrations, y.migrations) << i;
    EXPECT_EQ(x.checkpoint_ns, y.checkpoint_ns) << i;
    EXPECT_EQ(x.restore_ns, y.restore_ns) << i;
    EXPECT_EQ(x.work_executed_ns, y.work_executed_ns) << i;
  }
  EXPECT_EQ(a->metrics.makespan_ns, b->metrics.makespan_ns);
  EXPECT_EQ(a->metrics.preemptions, b->metrics.preemptions);
  EXPECT_EQ(a->metrics.checkpoint_overhead_ns,
            b->metrics.checkpoint_overhead_ns);

  // Remaining-time accounting: every workflow — preempted, migrated, or
  // untouched — executes exactly its uninterrupted runtime of work.
  for (const CompletionRecord& record : a->completions) {
    EXPECT_EQ(record.work_executed_ns, record.config_runtime_ns)
        << record.id;
    if (record.preemptions == 0) {
      EXPECT_EQ(record.restore_ns, 0u) << record.id;
      EXPECT_EQ(record.checkpoint_ns, 0u) << record.id;
    }
  }
}

TEST(Preemption, NoPreemptionPolicyNeverPreempts) {
  ArrivalParams params;
  params.count = 200;
  params.classes = 6;
  params.mean_interarrival_ns = 10.0e6;
  params.seed = 42;
  params.urgent_fraction = 0.25;
  const auto stream = *make_submission_stream(params);

  auto config = preemption_config(/*nodes=*/2);
  config.queue_capacity = stream.size();
  config.preemption = PreemptionPolicy::kNone;

  auto result = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->metrics.preemptions, 0u);
  EXPECT_EQ(result->metrics.migrations, 0u);
  EXPECT_EQ(result->metrics.checkpoint_overhead_ns, 0u);
  for (const CompletionRecord& record : result->completions) {
    EXPECT_EQ(record.preemptions, 0u);
    EXPECT_EQ(record.work_executed_ns, record.config_runtime_ns);
  }
}

}  // namespace
}  // namespace pmemflow::service
