#include "service/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "service/arrivals.hpp"
#include "trace/tracer.hpp"

namespace pmemflow::service {
namespace {

ArrivalParams small_stream_params() {
  ArrivalParams params;
  params.count = 200;
  params.classes = 6;
  params.mean_interarrival_ns = 20.0e6;
  params.seed = 42;
  return params;
}

std::vector<Submission> must_stream(const ArrivalParams& params) {
  return *make_submission_stream(params);
}

bool identical_records(const CompletionRecord& a, const CompletionRecord& b) {
  return a.id == b.id && a.label == b.label && a.priority == b.priority &&
         a.node == b.node && a.config == b.config &&
         a.cache_hit == b.cache_hit && a.arrival_ns == b.arrival_ns &&
         a.start_ns == b.start_ns && a.finish_ns == b.finish_ns &&
         a.best_runtime_ns == b.best_runtime_ns;
}

TEST(OnlineScheduler, SameSeedProducesIdenticalSchedule) {
  const auto stream = must_stream(small_stream_params());

  ServiceConfig config;
  config.nodes = 3;
  config.queue_capacity = 64;

  OnlineScheduler first(config);
  OnlineScheduler second(config);
  auto a = first.run(stream);
  auto b = second.run(stream);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());

  ASSERT_EQ(a->completions.size(), b->completions.size());
  for (std::size_t i = 0; i < a->completions.size(); ++i) {
    EXPECT_TRUE(identical_records(a->completions[i], b->completions[i]))
        << "record " << i;
  }
  EXPECT_EQ(a->metrics.makespan_ns, b->metrics.makespan_ns);
  EXPECT_EQ(a->metrics.queue_delay_ns.mean, b->metrics.queue_delay_ns.mean);
  EXPECT_EQ(a->metrics.admission.admitted, b->metrics.admission.admitted);
}

TEST(OnlineScheduler, RegeneratedStreamIsIdentical) {
  // The stream itself is a pure function of the seed.
  const auto once = must_stream(small_stream_params());
  const auto again = must_stream(small_stream_params());
  ASSERT_EQ(once.size(), again.size());
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once[i].id, again[i].id);
    EXPECT_EQ(once[i].arrival_ns, again[i].arrival_ns);
    EXPECT_EQ(once[i].priority, again[i].priority);
    EXPECT_TRUE(once[i].spec == again[i].spec);
  }
}

TEST(OnlineScheduler, SubmissionOrderDoesNotMatter) {
  // run() sorts by arrival time internally; feeding a reversed stream
  // must not change the schedule.
  const auto stream = must_stream(small_stream_params());
  auto reversed = stream;
  std::reverse(reversed.begin(), reversed.end());

  ServiceConfig config;
  config.nodes = 3;
  config.queue_capacity = 64;
  auto a = OnlineScheduler(config).run(stream);
  auto b = OnlineScheduler(config).run(reversed);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(a->completions.size(), b->completions.size());
  for (std::size_t i = 0; i < a->completions.size(); ++i) {
    EXPECT_TRUE(identical_records(a->completions[i], b->completions[i]));
  }
}

TEST(OnlineScheduler, AllAdmittedWorkCompletes) {
  const auto stream = must_stream(small_stream_params());
  ServiceConfig config;
  config.nodes = 4;
  config.queue_capacity = stream.size();
  config.defer_watermark = 1.0;

  auto result = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->metrics.completed, stream.size());
  EXPECT_EQ(result->metrics.admission.rejected, 0u);
  EXPECT_EQ(result->metrics.dropped, 0u);

  for (const auto& record : result->completions) {
    EXPECT_GE(record.start_ns, record.arrival_ns);
    EXPECT_GT(record.finish_ns, record.start_ns);
    EXPECT_GE(record.slowdown(), 1.0) << record.id;
    EXPECT_LT(record.node, config.nodes);
  }
  // With 6 classes and 200 submissions the cache must be doing nearly
  // all the work.
  EXPECT_EQ(result->metrics.cache.misses, 6u);
  EXPECT_EQ(result->metrics.cache.hits, stream.size() - 6u);
}

TEST(OnlineScheduler, SaturationTriggersAdmissionControl) {
  // One slow node + a tiny queue + a burst of arrivals: the queue
  // fills, kBatch work defers past the watermark, and overflow is
  // rejected with a positive retry-after hint.
  auto params = small_stream_params();
  params.count = 120;
  params.mean_interarrival_ns = 1.0e6;  // far faster than service rate
  params.batch_fraction = 0.5;
  const auto stream = must_stream(params);

  ServiceConfig config;
  config.nodes = 1;
  config.queue_capacity = 8;
  config.defer_watermark = 0.5;
  config.max_retries = 2;

  auto result = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(result.has_value());
  const auto& m = result->metrics;
  EXPECT_GT(m.admission.rejected, 0u);
  EXPECT_GT(m.admission.deferred, 0u);
  EXPECT_GT(m.retries, 0u);
  EXPECT_GT(m.dropped, 0u);
  // Everything that was admitted still finishes.
  EXPECT_EQ(m.completed, m.admission.admitted);
  EXPECT_LT(m.completed, stream.size());
  // The lone node never runs two workflows at once.
  SimTime previous_finish = 0;
  auto sorted = result->completions;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.start_ns < b.start_ns; });
  for (const auto& record : sorted) {
    EXPECT_GE(record.start_ns, previous_finish);
    previous_finish = record.finish_ns;
  }
}

TEST(OnlineScheduler, AccountingInvariantAcrossPolicies) {
  // Every submission must end up exactly one of completed or dropped —
  // rejected work retries like deferred work and is only dropped once
  // its retry budget is exhausted, so nothing vanishes from accounting.
  auto params = small_stream_params();
  params.count = 140;
  params.mean_interarrival_ns = 1.0e6;  // saturate the lone node
  params.batch_fraction = 0.5;
  params.urgent_fraction = 0.2;
  const auto stream = must_stream(params);

  for (const auto policy :
       {PlacementPolicy::kFirstFit, PlacementPolicy::kLeastLoaded,
        PlacementPolicy::kRecommenderAware,
        PlacementPolicy::kColocationAware}) {
    for (const auto preemption :
         {PreemptionPolicy::kNone, PreemptionPolicy::kCheckpointRestore}) {
      ServiceConfig config;
      config.nodes = 1;
      config.queue_capacity = 8;
      config.defer_watermark = 0.5;
      config.max_retries = 2;
      config.policy = policy;
      config.preemption = preemption;

      auto result = OnlineScheduler(config).run(stream);
      ASSERT_TRUE(result.has_value());
      const auto& m = result->metrics;
      EXPECT_EQ(m.completed + m.dropped, stream.size())
          << to_string(policy) << "/" << to_string(preemption);
      EXPECT_EQ(m.completed, m.admission.admitted)
          << to_string(policy) << "/" << to_string(preemption);
      EXPECT_GT(m.dropped, 0u) << "stream not saturating — test is vacuous";
    }
  }
}

TEST(OnlineScheduler, EmptyFleetIsAnErrorNotACrash) {
  // Regression: a zero-node config used to walk straight into the
  // fleet's node_count assertion; the service must surface a clean
  // Expected error instead.
  auto params = small_stream_params();
  params.count = 5;
  const auto stream = must_stream(params);

  ServiceConfig config;
  config.nodes = 0;
  auto result = OnlineScheduler(config).run(stream);
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("at least one"), std::string::npos)
      << result.error().message;
}

TEST(OnlineScheduler, FixedPolicyUsesTheFixedConfig) {
  auto params = small_stream_params();
  params.count = 40;
  const auto stream = must_stream(params);

  ServiceConfig config;
  config.nodes = 2;
  config.queue_capacity = stream.size();
  config.policy = PlacementPolicy::kFirstFit;
  config.fixed_config = {core::ExecutionMode::kSerial,
                         core::Placement::kLocalWrite};

  auto result = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(result.has_value());
  for (const auto& record : result->completions) {
    EXPECT_EQ(record.config, config.fixed_config);
  }
}

TEST(OnlineScheduler, RecommenderAwareNeverSlowerPerClass) {
  // Per submission, the recommender-aware runtime is the recommended
  // config's sweep runtime — by construction within the sweep, so its
  // slowdown is bounded by the fixed policy's worst case. Check the
  // aggregate ordering on a stream long enough to matter.
  auto params = small_stream_params();
  params.count = 300;
  const auto stream = must_stream(params);

  ServiceConfig config;
  config.nodes = 2;
  config.queue_capacity = stream.size();
  config.defer_watermark = 1.0;

  config.policy = PlacementPolicy::kRecommenderAware;
  auto aware = OnlineScheduler(config).run(stream);
  config.policy = PlacementPolicy::kLeastLoaded;
  auto fixed = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(aware.has_value());
  ASSERT_TRUE(fixed.has_value());
  EXPECT_LE(aware->metrics.slowdown.mean, fixed->metrics.slowdown.mean);
  EXPECT_LE(aware->metrics.makespan_ns, fixed->metrics.makespan_ns);
}

TEST(OnlineScheduler, CachePersistsAcrossRuns) {
  auto params = small_stream_params();
  params.count = 50;
  const auto stream = must_stream(params);

  ServiceConfig config;
  config.nodes = 2;
  config.queue_capacity = stream.size();

  OnlineScheduler scheduler(config);
  ASSERT_TRUE(scheduler.run(stream).has_value());
  const auto misses_after_first = scheduler.cache().stats().misses;
  auto second = scheduler.run(stream);
  ASSERT_TRUE(second.has_value());
  // Second run over the same classes: all hits, no new characterization.
  EXPECT_EQ(scheduler.cache().stats().misses, misses_after_first);
  for (const auto& record : second->completions) {
    EXPECT_TRUE(record.cache_hit);
  }
}

TEST(OnlineScheduler, TracerSpansBalance) {
  auto params = small_stream_params();
  params.count = 30;
  const auto stream = must_stream(params);

  trace::Tracer tracer;
  ServiceConfig config;
  config.nodes = 2;
  config.queue_capacity = stream.size();
  config.tracer = &tracer;

  auto result = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(tracer.open_spans(), 0u);
  EXPECT_EQ(tracer.spans().size(), result->completions.size());
  for (const auto& span : tracer.spans()) {
    EXPECT_GT(span.duration(), 0u);
  }
}

}  // namespace
}  // namespace pmemflow::service
