#include "service/submission_queue.hpp"

#include <gtest/gtest.h>

namespace pmemflow::service {
namespace {

Submission make_submission(std::uint64_t id, SimTime arrival,
                           Priority priority = Priority::kNormal) {
  Submission s;
  s.id = id;
  s.arrival_ns = arrival;
  s.priority = priority;
  return s;
}

TEST(SubmissionQueue, FifoWithinOnePriority) {
  SubmissionQueue queue(8);
  queue.submit(make_submission(1, 100), 0);
  queue.submit(make_submission(2, 50), 0);
  queue.submit(make_submission(3, 200), 0);
  EXPECT_EQ(queue.pop().id, 2u);
  EXPECT_EQ(queue.pop().id, 1u);
  EXPECT_EQ(queue.pop().id, 3u);
  EXPECT_TRUE(queue.empty());
}

TEST(SubmissionQueue, HigherPriorityJumpsTheLine) {
  SubmissionQueue queue(8);
  queue.submit(make_submission(1, 10, Priority::kBatch), 0);
  queue.submit(make_submission(2, 20, Priority::kNormal), 0);
  queue.submit(make_submission(3, 30, Priority::kUrgent), 0);
  EXPECT_EQ(queue.pop().id, 3u);
  EXPECT_EQ(queue.pop().id, 2u);
  EXPECT_EQ(queue.pop().id, 1u);
}

TEST(SubmissionQueue, SimultaneousArrivalsBreakTiesById) {
  SubmissionQueue queue(8);
  queue.submit(make_submission(7, 100), 0);
  queue.submit(make_submission(3, 100), 0);
  queue.submit(make_submission(5, 100), 0);
  EXPECT_EQ(queue.pop().id, 3u);
  EXPECT_EQ(queue.pop().id, 5u);
  EXPECT_EQ(queue.pop().id, 7u);
}

TEST(SubmissionQueue, RejectsWhenFull) {
  SubmissionQueue queue(2);
  EXPECT_EQ(queue.submit(make_submission(1, 0), 5).verdict,
            AdmissionVerdict::kAdmitted);
  EXPECT_EQ(queue.submit(make_submission(2, 0), 5).verdict,
            AdmissionVerdict::kAdmitted);
  const auto decision = queue.submit(make_submission(3, 0), 5);
  EXPECT_EQ(decision.verdict, AdmissionVerdict::kRejected);
  EXPECT_EQ(decision.retry_after_ns, 5u);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.stats().admitted, 2u);
  EXPECT_EQ(queue.stats().rejected, 1u);
}

TEST(SubmissionQueue, DefersBatchAboveWatermark) {
  SubmissionQueue queue(4, /*defer_watermark=*/0.5);
  queue.submit(make_submission(1, 0), 0);
  queue.submit(make_submission(2, 0), 0);
  // Occupancy 2/4 == watermark: batch deferred, normal/urgent admitted.
  const auto deferred =
      queue.submit(make_submission(3, 0, Priority::kBatch), 9);
  EXPECT_EQ(deferred.verdict, AdmissionVerdict::kDeferred);
  EXPECT_EQ(deferred.retry_after_ns, 9u);
  EXPECT_EQ(queue.submit(make_submission(4, 0, Priority::kNormal), 0).verdict,
            AdmissionVerdict::kAdmitted);
  EXPECT_EQ(queue.submit(make_submission(5, 0, Priority::kUrgent), 0).verdict,
            AdmissionVerdict::kAdmitted);
  EXPECT_EQ(queue.stats().deferred, 1u);
  EXPECT_EQ(queue.size(), 4u);
}

TEST(SubmissionQueue, WatermarkOneNeverDefers) {
  SubmissionQueue queue(2, /*defer_watermark=*/1.0);
  EXPECT_EQ(queue.submit(make_submission(1, 0, Priority::kBatch), 0).verdict,
            AdmissionVerdict::kAdmitted);
  EXPECT_EQ(queue.submit(make_submission(2, 0, Priority::kBatch), 0).verdict,
            AdmissionVerdict::kAdmitted);
  EXPECT_EQ(queue.submit(make_submission(3, 0, Priority::kBatch), 0).verdict,
            AdmissionVerdict::kRejected);
}

TEST(SubmissionQueue, TracksHighWater) {
  SubmissionQueue queue(8);
  queue.submit(make_submission(1, 0), 0);
  queue.submit(make_submission(2, 0), 0);
  queue.submit(make_submission(3, 0), 0);
  (void)queue.pop();
  (void)queue.pop();
  queue.submit(make_submission(4, 0), 0);
  EXPECT_EQ(queue.stats().high_water, 3u);
}

}  // namespace
}  // namespace pmemflow::service
