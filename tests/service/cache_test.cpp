#include "service/profile_cache.hpp"

#include <gtest/gtest.h>

#include "service/arrivals.hpp"
#include "workloads/synthetic.hpp"

namespace pmemflow::service {
namespace {

workflow::WorkflowSpec small_spec(Bytes object_size,
                                  double analytics_ns_per_object = 0.0) {
  workloads::SyntheticSimulation::Params sim;
  sim.object_size = object_size;
  sim.objects_per_rank = 4;
  sim.compute_ns = 1e6;
  workloads::SyntheticAnalytics::Params analytics;
  analytics.compute_ns_per_object = analytics_ns_per_object;
  return workloads::make_synthetic_workflow(sim, analytics, /*ranks=*/8,
                                            /*iterations=*/2);
}

void expect_identical_recommendation(const core::Recommendation& a,
                                     const core::Recommendation& b) {
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.table2_row, b.table2_row);
  for (std::size_t i = 0; i < a.predicted_ns.size(); ++i) {
    // Byte-identical, not approximately equal: a cache hit must return
    // exactly what a fresh characterization computes.
    EXPECT_EQ(a.predicted_ns[i], b.predicted_ns[i]) << "config " << i;
  }
}

TEST(ProfileCache, HitIsIdenticalToFreshCharacterization) {
  ProfileCache cache(8);
  const auto spec = small_spec(kMiB);

  auto first = cache.lookup(spec);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  auto second = cache.lookup(spec);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  // Same object, so trivially identical...
  EXPECT_EQ(first->get(), second->get());

  // ...and equal to a from-scratch characterization, field for field.
  auto fresh = cache.characterize(spec);
  ASSERT_TRUE(fresh.has_value());
  expect_identical_recommendation((*second)->rule_based, fresh->rule_based);
  expect_identical_recommendation((*second)->model_based, fresh->model_based);
  EXPECT_EQ((*second)->runtime_ns, fresh->runtime_ns);
  EXPECT_EQ((*second)->best_index, fresh->best_index);
  EXPECT_EQ((*second)->profile.simulation.iteration_ns,
            fresh->profile.simulation.iteration_ns);
  EXPECT_EQ((*second)->profile.simulation.io_ns,
            fresh->profile.simulation.io_ns);
  EXPECT_EQ((*second)->profile.analytics.iteration_ns,
            fresh->profile.analytics.iteration_ns);
  EXPECT_EQ((*second)->profile.analytics.io_ns,
            fresh->profile.analytics.io_ns);
}

TEST(ProfileCache, RelabeledResubmissionHits) {
  ProfileCache cache(8);
  auto spec = small_spec(kMiB);
  ASSERT_TRUE(cache.lookup(spec).has_value());

  auto renamed = spec;
  renamed.label = "same-class-new-job-name";
  auto hit = cache.lookup(renamed);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ProfileCache, EvictsLeastRecentlyUsed) {
  ProfileCache cache(2);
  const auto a = small_spec(256 * kKiB);
  const auto b = small_spec(kMiB);
  const auto c = small_spec(4 * kMiB);

  ASSERT_TRUE(cache.lookup(a).has_value());  // {a}
  ASSERT_TRUE(cache.lookup(b).has_value());  // {b, a}
  ASSERT_TRUE(cache.lookup(a).has_value());  // {a, b} — a refreshed
  ASSERT_TRUE(cache.lookup(c).has_value());  // {c, a} — b evicted
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);

  ASSERT_TRUE(cache.lookup(a).has_value());  // still cached
  EXPECT_EQ(cache.stats().hits, 2u);
  ASSERT_TRUE(cache.lookup(b).has_value());  // re-characterized
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(ProfileCache, EvictedEntryPointerStaysValid) {
  ProfileCache cache(1);
  const auto a = small_spec(256 * kKiB);
  const auto b = small_spec(kMiB);
  auto first = cache.lookup(a);
  ASSERT_TRUE(first.has_value());
  const auto held = *first;  // keep the shared_ptr across eviction
  ASSERT_TRUE(cache.lookup(b).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(held->fingerprint, workflow::class_fingerprint(a));
  EXPECT_GT(held->best_runtime_ns(), 0u);
}

TEST(ProfileCache, RuntimesComeFromTheOracleSweep) {
  ProfileCache cache(4);
  auto entry = cache.lookup(small_spec(kMiB, 5e4));
  ASSERT_TRUE(entry.has_value());
  const auto& cached = **entry;
  for (SimDuration runtime : cached.runtime_ns) {
    EXPECT_GT(runtime, 0u);
    EXPECT_GE(runtime, cached.best_runtime_ns());
  }
  EXPECT_EQ(cached.runtime_ns[cached.best_index], cached.best_runtime_ns());
}

TEST(ProfileCache, ErrorsAreNotCached) {
  ProfileCache cache(4);
  auto bad = small_spec(kMiB);
  bad.ranks = 1000;  // exceeds per-socket cores: characterization fails
  EXPECT_FALSE(cache.lookup(bad).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ProfileCache, ArrivalPoolClassesAllCacheable) {
  // Every class the arrival generator can produce characterizes
  // successfully and lands in the cache.
  ProfileCache cache(64);
  for (const auto& spec : make_class_pool(6, /*seed=*/7)) {
    ASSERT_TRUE(cache.lookup(spec).has_value()) << spec.label;
  }
  EXPECT_EQ(cache.size(), 6u);
}

}  // namespace
}  // namespace pmemflow::service
