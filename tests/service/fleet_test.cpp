#include "service/fleet.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace pmemflow::service {
namespace {

RunningTask task_with_work(SimDuration work_ns) {
  RunningTask task;
  task.remaining_ns = work_ns;
  return task;
}

TEST(InterferenceScaled, ExactAtFactorOne) {
  // Factor 1.0 must stay on the integer path: no double round-trip, no
  // off-by-one from ceil.
  EXPECT_EQ(interference_scaled(0, 1.0), 0u);
  EXPECT_EQ(interference_scaled(1, 1.0), 1u);
  EXPECT_EQ(interference_scaled(999'999'999'999ull, 1.0),
            999'999'999'999ull);
}

TEST(InterferenceScaled, CeilsAboveOne) {
  EXPECT_EQ(interference_scaled(101, 1.5), 152u);  // ceil(151.5)
  EXPECT_EQ(interference_scaled(100, 2.0), 200u);
}

TEST(InterferenceScaled, SubUnityFactorsClampToSoloTime) {
  // Interference never speeds work up.
  EXPECT_EQ(interference_scaled(100, 0.5), 100u);
}

TEST(FleetDeathTest, ZeroNodesAborts) {
  EXPECT_DEATH(Fleet(0), "at least one node");
}

TEST(Fleet, EarliestFreeOnFreshFleetIsNow) {
  Fleet fleet(3);
  EXPECT_EQ(fleet.earliest_free_ns(), 0u);
  EXPECT_TRUE(fleet.any_idle(0));
}

TEST(Fleet, UtilizationClampsDrainPastHorizon) {
  // Regression: busy time extending past the horizon (e.g. a checkpoint
  // drain scheduled beyond the last completion) used to push
  // utilization above 1.0.
  Fleet fleet(1);
  fleet.start(SlotRef{0, 0}, 0, 150, task_with_work(150));
  // Horizon ends mid-run: only the in-horizon 100 of the 150 busy ns
  // count, so utilization is exactly 1.0, not 1.5.
  EXPECT_DOUBLE_EQ(fleet.utilization(0, 100), 1.0);
  // A horizon past the finish sees the full busy time.
  EXPECT_DOUBLE_EQ(fleet.utilization(0, 200), 0.75);
}

TEST(Fleet, RetimeSettlesWorkAtTheOldRateFirst) {
  Fleet fleet(1, 2);
  const SlotRef ref{0, 0};
  fleet.start(ref, 0, 100, task_with_work(100));

  // 10 ns at solo rate -> 10 work done, 90 owed; doubling the factor
  // re-times the finish to 10 + 90*2.
  EXPECT_EQ(fleet.retime(ref, 10, 2.0), 190u);
  EXPECT_EQ(fleet.remaining_work_at(ref, 10), 90u);

  // 40 ns at factor 2.0 -> 20 more work done; relaxing back to solo
  // re-times to 50 + 70.
  EXPECT_EQ(fleet.remaining_work_at(ref, 30), 80u);
  EXPECT_EQ(fleet.retime(ref, 50, 1.0), 120u);
  EXPECT_EQ(fleet.remaining_work_at(ref, 50), 70u);

  const RunningTask* task = fleet.running(ref);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->record.work_executed_ns, 30u);
}

TEST(Fleet, SegmentOverheadIsConsumedBeforeWork) {
  // A resumed task pays restore overhead first; wall time inside the
  // overhead window converts to zero work.
  Fleet fleet(1, 2);
  const SlotRef ref{0, 0};
  RunningTask task = task_with_work(100);
  task.segment_overhead_ns = 20;
  fleet.start(ref, 0, 120, std::move(task));

  EXPECT_EQ(fleet.remaining_work_at(ref, 10), 100u);  // still restoring
  EXPECT_EQ(fleet.remaining_work_at(ref, 50), 70u);   // 30 past restore
}

TEST(Fleet, PackSlotRequiresExactlyOneRunningTenant) {
  Fleet fleet(2, 2);
  // Empty node: nothing to pack next to (solo placement handles it).
  EXPECT_FALSE(fleet.pack_slot(0, 0).has_value());
  EXPECT_FALSE(fleet.sole_tenant_slot(0).has_value());

  fleet.start(SlotRef{0, 0}, 0, 100, task_with_work(100));
  ASSERT_TRUE(fleet.sole_tenant_slot(0).has_value());
  EXPECT_EQ(*fleet.sole_tenant_slot(0), 0u);
  ASSERT_TRUE(fleet.pack_slot(0, 10).has_value());
  EXPECT_EQ(*fleet.pack_slot(0, 10), 1u);

  // Fully packed: no third tenant.
  fleet.start(SlotRef{0, 1}, 10, 100, task_with_work(100));
  EXPECT_FALSE(fleet.pack_slot(0, 20).has_value());
  EXPECT_FALSE(fleet.sole_tenant_slot(0).has_value());
}

TEST(Fleet, DrainingSlotBlocksPacking) {
  // A slot still streaming a checkpoint keeps the node's device busy;
  // the survivor is sole tenant but nothing may pack until the drain
  // completes.
  Fleet fleet(1, 2);
  fleet.start(SlotRef{0, 0}, 0, 100, task_with_work(100));
  fleet.start(SlotRef{0, 1}, 0, 100, task_with_work(100));
  (void)fleet.preempt(SlotRef{0, 1}, 10, /*checkpoint_ns=*/30);

  ASSERT_TRUE(fleet.sole_tenant_slot(0).has_value());
  EXPECT_FALSE(fleet.pack_slot(0, 20).has_value());  // drain until 40
  EXPECT_TRUE(fleet.pack_slot(0, 40).has_value());
}

TEST(Fleet, PreemptReturnsSettledRemainingWork) {
  Fleet fleet(1);
  const SlotRef ref{0, 0};
  fleet.start(ref, 0, 100, task_with_work(100));

  RunningTask task = fleet.preempt(ref, 40, /*checkpoint_ns=*/25);
  EXPECT_EQ(task.remaining_ns, 60u);
  EXPECT_EQ(task.record.work_executed_ns, 40u);
  EXPECT_EQ(task.record.preemptions, 1u);
  EXPECT_EQ(task.record.checkpoint_ns, 25u);
  EXPECT_DOUBLE_EQ(task.interference, 1.0);
  // The slot stays busy for the drain, then frees.
  EXPECT_EQ(fleet.node(0).slots[0].free_at_ns, 65u);
  EXPECT_FALSE(fleet.any_idle(50));
  EXPECT_TRUE(fleet.any_idle(65));
}

TEST(FleetIdleIndex, MatchesLinearScanUnderChurn) {
  // The idle-slot index must agree with the reference O(nodes) linear
  // scan after any interleaving of start/complete/preempt, for both
  // orderings (first-fit by index, least-loaded by accumulated busy
  // time) — including mid-drain nodes, which stay indexed but are
  // filtered at query time.
  Fleet fleet(7, 2);
  std::uint64_t rng = 0x1D1E5EEDull;
  auto next = [&rng](std::uint64_t bound) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return (rng >> 33) % bound;
  };
  SimTime now = 0;
  std::vector<SlotRef> running;
  auto check = [&](SimTime at) {
    EXPECT_EQ(fleet.pick_idle_node(PlacementPolicy::kFirstFit, at),
              fleet.pick_idle_node_linear(PlacementPolicy::kFirstFit, at));
    EXPECT_EQ(fleet.pick_idle_node(PlacementPolicy::kLeastLoaded, at),
              fleet.pick_idle_node_linear(PlacementPolicy::kLeastLoaded, at));
  };
  for (int step = 0; step < 2000; ++step) {
    now += next(50);
    const std::uint64_t op = next(3);
    if (op == 0 || running.empty()) {
      const auto node = static_cast<std::uint32_t>(next(fleet.size()));
      for (std::uint32_t s = 0; s < fleet.tenants_per_node(); ++s) {
        const SlotState& state = fleet.node(node).slots[s];
        if (!state.running.has_value() && state.free_at_ns <= now) {
          const SimDuration busy = 20 + next(200);
          fleet.start(SlotRef{node, s}, now, busy, task_with_work(busy));
          running.push_back(SlotRef{node, s});
          break;
        }
      }
    } else {
      const std::uint64_t pick = next(running.size());
      const SlotRef ref = running[pick];
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(pick));
      const SimTime free_at = fleet.node(ref.node).slots[ref.slot].free_at_ns;
      if (op == 1 || free_at <= now) {
        (void)fleet.complete(ref);
      } else {
        // Preempt strictly inside the occupancy window; the drain keeps
        // the slot busy, exercising the drained-but-indexed state.
        (void)fleet.preempt(ref, now, /*checkpoint_ns=*/next(40));
      }
    }
    check(now);
    check(now + 25);
  }
}

TEST(Fleet, BusyAccountingSurvivesRetime) {
  // Node busy time must track the re-timed occupancy, not the original
  // estimate: stretch a task, let it finish, and the horizon-long
  // utilization is the stretched wall time.
  Fleet fleet(1, 2);
  const SlotRef ref{0, 0};
  fleet.start(ref, 0, 100, task_with_work(100));
  (void)fleet.retime(ref, 0, 2.0);  // finish at 200
  (void)fleet.complete(ref);
  // 200 busy ns over a 200 ns horizon across 2 slots.
  EXPECT_DOUBLE_EQ(fleet.utilization(0, 200), 0.5);
}

}  // namespace
}  // namespace pmemflow::service
