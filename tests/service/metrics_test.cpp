// Zero-completion safety for the service metrics pipeline.
//
// A run where every submission is rejected (or an empty stream) has no
// completion records. The aggregate, the operator report, and the CSV
// export must all emit finite zeros — never NaN or inf from a 0/0.
#include "service/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace pmemflow::service {
namespace {

ServiceMetrics empty_run_metrics() {
  return aggregate_metrics(/*records=*/{}, /*makespan_ns=*/0,
                           /*node_utilization=*/{0.0, 0.0}, QueueStats{},
                           CacheStats{}, /*retries=*/0, /*dropped=*/0);
}

void expect_finite(const metrics::SummaryStats& stats, const char* what) {
  EXPECT_TRUE(std::isfinite(stats.mean)) << what;
  EXPECT_TRUE(std::isfinite(stats.p50)) << what;
  EXPECT_TRUE(std::isfinite(stats.p99)) << what;
  EXPECT_TRUE(std::isfinite(stats.max)) << what;
  EXPECT_EQ(stats.mean, 0.0) << what;
}

TEST(ServiceMetricsZeroCompletions, AggregateIsAllFiniteZeros) {
  const ServiceMetrics metrics = empty_run_metrics();
  EXPECT_EQ(metrics.completed, 0u);
  EXPECT_EQ(metrics.makespan_ns, 0u);
  expect_finite(metrics.queue_delay_ns, "queue_delay");
  expect_finite(metrics.slowdown, "slowdown");
  expect_finite(metrics.runtime_ns, "runtime");
  expect_finite(metrics.victim_slowdown, "victim_slowdown");
  EXPECT_TRUE(std::isfinite(metrics.mean_utilization));
  EXPECT_EQ(metrics.mean_utilization, 0.0);
  EXPECT_EQ(metrics.preemptions, 0u);
  EXPECT_EQ(metrics.checkpoint_overhead_ns, 0u);
}

TEST(ServiceMetricsZeroCompletions, ReportPrintsNoNaN) {
  std::ostringstream out;
  print_service_report(out, "empty run", empty_run_metrics());
  const std::string text = out.str();
  EXPECT_FALSE(text.empty());
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_EQ(text.find("NaN"), std::string::npos) << text;
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
}

TEST(ServiceMetricsZeroCompletions, CsvRowPrintsNoNaN) {
  CsvWriter csv(service_csv_header());
  append_service_csv_row(csv, "empty", empty_run_metrics());
  std::ostringstream out;
  csv.write(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("empty"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
}

TEST(ServiceMetricsZeroCompletions, CsvHeaderHasNewColumns) {
  const auto header = service_csv_header();
  auto has = [&](const char* name) {
    for (const auto& column : header) {
      if (column == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("retries"));
  EXPECT_TRUE(has("high_water"));
  EXPECT_TRUE(has("preemptions"));
  EXPECT_TRUE(has("migrations"));
  EXPECT_TRUE(has("evictions"));
  EXPECT_TRUE(has("gc_bytes"));
  EXPECT_TRUE(has("stage_hits"));
  EXPECT_TRUE(has("residency_high_water"));
}

}  // namespace
}  // namespace pmemflow::service
