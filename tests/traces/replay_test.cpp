#include "traces/replay.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dag/spec.hpp"
#include "service/arrivals.hpp"
#include "workflow/model.hpp"
#include "workloads/synthetic.hpp"

namespace pmemflow::traces {
namespace {

using service::Submission;
using workflow::WorkflowSpec;

std::vector<WorkflowSpec> small_pool(std::uint64_t seed = 0x1234) {
  return service::make_class_pool(4, seed);
}

InlineClass sample_inline_class() {
  InlineClass inline_class;
  inline_class.object_size = 4 * kMiB;
  inline_class.objects_per_rank = 8;
  inline_class.sim_compute_ns = 1.5e6;
  inline_class.analytics_compute_ns = 250.0;
  inline_class.ranks = 8;
  inline_class.iterations = 2;
  inline_class.sim_seed = 77;
  inline_class.sim_name = "inline-sim";
  inline_class.ana_name = "inline-ana";
  return inline_class;
}

TraceRecord class_id_record(std::uint64_t id, SimTime arrival,
                            std::uint32_t class_id) {
  TraceRecord record;
  record.id = id;
  record.arrival_ns = arrival;
  record.class_id = class_id;
  return record;
}

TEST(TraceReplay, BindsByClassId) {
  const auto pool = small_pool();
  Trace trace;
  trace.records.push_back(class_id_record(0, 100, 2));
  trace.records.push_back(class_id_record(1, 200, 0));

  TraceReplayer replayer{pool};
  auto stream = replayer.replay(trace);
  ASSERT_TRUE(stream.has_value()) << stream.error().message;
  ASSERT_EQ(stream->size(), 2u);
  EXPECT_EQ((*stream)[0].spec.label, pool[2].label);
  EXPECT_EQ((*stream)[1].spec.label, pool[0].label);
  EXPECT_EQ((*stream)[0].arrival_ns, 100u);
}

TEST(TraceReplay, ClassIdOutOfRangeNamesRecord) {
  Trace trace;
  trace.records.push_back(class_id_record(9, 100, 7));
  TraceReplayer replayer{small_pool()};
  auto stream = replayer.replay(trace);
  ASSERT_FALSE(stream.has_value());
  EXPECT_NE(stream.error().message.find("record 0 (id 9)"),
            std::string::npos);
  EXPECT_NE(stream.error().message.find("out of range"), std::string::npos);
}

TEST(TraceReplay, FingerprintCrossCheckCatchesWrongPool) {
  const auto pool_a = small_pool(0x1234);
  const auto pool_b = small_pool(0x9999);
  Trace trace;
  auto record = class_id_record(0, 100, 1);
  record.class_fingerprint = workflow::class_fingerprint(pool_a[1]);
  trace.records.push_back(record);

  // Same pool: fingerprint verifies.
  ASSERT_TRUE(TraceReplayer{pool_a}.replay(trace).has_value());

  // Different seed: the binding is refused, not silently remapped.
  auto stream = TraceReplayer{pool_b}.replay(trace);
  ASSERT_FALSE(stream.has_value());
  EXPECT_NE(stream.error().message.find("wrong pool"), std::string::npos);
}

TEST(TraceReplay, BindsByFingerprintAlone) {
  const auto pool = small_pool();
  Trace trace;
  TraceRecord record;
  record.id = 0;
  record.arrival_ns = 50;
  record.class_fingerprint = workflow::class_fingerprint(pool[3]);
  trace.records.push_back(record);

  auto stream = TraceReplayer{pool}.replay(trace);
  ASSERT_TRUE(stream.has_value()) << stream.error().message;
  EXPECT_EQ((*stream)[0].spec.label, pool[3].label);
}

TEST(TraceReplay, UnknownFingerprintWithoutInlineRejected) {
  Trace trace;
  TraceRecord record;
  record.id = 0;
  record.arrival_ns = 50;
  record.class_fingerprint = 0xfeedfaceULL;
  trace.records.push_back(record);

  auto stream = TraceReplayer{small_pool()}.replay(trace);
  ASSERT_FALSE(stream.has_value());
  EXPECT_NE(stream.error().message.find("not in the replay pool"),
            std::string::npos);
}

TEST(TraceReplay, InlineClassNeedsNoPool) {
  Trace trace;
  TraceRecord record;
  record.id = 0;
  record.arrival_ns = 10;
  record.inline_class = sample_inline_class();
  trace.records.push_back(record);

  auto stream = TraceReplayer{{}}.replay(trace);
  ASSERT_TRUE(stream.has_value()) << stream.error().message;
  const auto& spec = (*stream)[0].spec;
  EXPECT_EQ(spec.ranks, 8u);
  EXPECT_EQ(spec.iterations, 2u);
  EXPECT_EQ(workflow::class_fingerprint(spec),
            workflow::class_fingerprint(
                materialize_inline_class(sample_inline_class())));
}

TEST(TraceReplay, InlineFingerprintMismatchRejected) {
  Trace trace;
  TraceRecord record;
  record.id = 0;
  record.arrival_ns = 10;
  record.inline_class = sample_inline_class();
  record.class_fingerprint = 0x1;  // wrong on purpose
  trace.records.push_back(record);

  auto stream = TraceReplayer{{}}.replay(trace);
  ASSERT_FALSE(stream.has_value());
  EXPECT_NE(stream.error().message.find("inline class fingerprints as"),
            std::string::npos);
}

TEST(TraceReplay, DuplicateIdsRejected) {
  Trace trace;
  trace.records.push_back(class_id_record(5, 100, 0));
  trace.records.push_back(class_id_record(5, 200, 1));
  auto stream = TraceReplayer{small_pool()}.replay(trace);
  ASSERT_FALSE(stream.has_value());
  EXPECT_NE(stream.error().message.find("duplicate id"), std::string::npos);
}

TEST(TraceReplay, LabelColumnOverridesSpecLabel) {
  Trace trace;
  auto record = class_id_record(0, 100, 0);
  record.label = "prod-run-42";
  trace.records.push_back(record);
  auto stream = TraceReplayer{small_pool()}.replay(trace);
  ASSERT_TRUE(stream.has_value());
  EXPECT_EQ((*stream)[0].spec.label, "prod-run-42");
}

TEST(TraceReplay, TimeScaleStretchesArrivals) {
  Trace trace;
  trace.records.push_back(class_id_record(0, 1000, 0));
  trace.records.push_back(class_id_record(1, 3000, 1));

  ReplayOptions options;
  options.time_scale = 2.5;
  auto stream = TraceReplayer{small_pool(), options}.replay(trace);
  ASSERT_TRUE(stream.has_value());
  EXPECT_EQ((*stream)[0].arrival_ns, 2500u);
  EXPECT_EQ((*stream)[1].arrival_ns, 7500u);
}

TEST(TraceReplay, NonPositiveTimeScaleRejected) {
  ReplayOptions options;
  options.time_scale = 0.0;
  auto stream = TraceReplayer{small_pool(), options}.replay(Trace{});
  ASSERT_FALSE(stream.has_value());
  EXPECT_NE(stream.error().message.find("time_scale"), std::string::npos);
}

TEST(TraceReplay, HorizonDropsLateArrivals) {
  Trace trace;
  trace.records.push_back(class_id_record(0, 100, 0));
  trace.records.push_back(class_id_record(1, 900, 1));
  trace.records.push_back(class_id_record(2, 1500, 2));

  ReplayOptions options;
  options.max_arrival_ns = 1000;
  auto stream = TraceReplayer{small_pool(), options}.replay(trace);
  ASSERT_TRUE(stream.has_value());
  ASSERT_EQ(stream->size(), 2u);
  EXPECT_EQ(stream->back().id, 1u);
}

TEST(TraceReplay, LimitKeepsEarliestArrivals) {
  Trace trace;
  trace.records.push_back(class_id_record(0, 900, 0));
  trace.records.push_back(class_id_record(1, 100, 1));
  trace.records.push_back(class_id_record(2, 500, 2));

  ReplayOptions options;
  options.limit = 2;
  auto stream = TraceReplayer{small_pool(), options}.replay(trace);
  ASSERT_TRUE(stream.has_value());
  ASSERT_EQ(stream->size(), 2u);
  EXPECT_EQ((*stream)[0].id, 1u);
  EXPECT_EQ((*stream)[1].id, 2u);
}

TEST(TraceReplay, OutputSortedByArrivalThenId) {
  Trace trace;
  trace.records.push_back(class_id_record(3, 500, 0));
  trace.records.push_back(class_id_record(1, 500, 1));
  trace.records.push_back(class_id_record(2, 100, 2));

  auto stream = TraceReplayer{small_pool()}.replay(trace);
  ASSERT_TRUE(stream.has_value());
  ASSERT_EQ(stream->size(), 3u);
  EXPECT_EQ((*stream)[0].id, 2u);
  EXPECT_EQ((*stream)[1].id, 1u);
  EXPECT_EQ((*stream)[2].id, 3u);
}

TEST(TraceReplay, RecordThenReplayRoundTripsExactly) {
  service::ArrivalParams params;
  params.count = 64;
  params.classes = 4;
  const auto stream = *service::make_submission_stream(params);
  const auto pool = service::make_class_pool(params.classes, params.seed);

  const auto trace = record_trace(stream, pool);
  ASSERT_EQ(trace.records.size(), stream.size());

  auto replayed = TraceReplayer{pool}.replay(trace);
  ASSERT_TRUE(replayed.has_value()) << replayed.error().message;
  ASSERT_EQ(replayed->size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ((*replayed)[i].id, stream[i].id);
    EXPECT_EQ((*replayed)[i].arrival_ns, stream[i].arrival_ns);
    EXPECT_EQ((*replayed)[i].priority, stream[i].priority);
    EXPECT_EQ((*replayed)[i].spec.label, stream[i].spec.label);
    EXPECT_EQ(workflow::class_fingerprint((*replayed)[i].spec),
              workflow::class_fingerprint(stream[i].spec));
  }
}

TEST(TraceReplay, RecordedSyntheticTraceIsSelfContained) {
  service::ArrivalParams params;
  params.count = 16;
  params.classes = 3;
  const auto stream = *service::make_submission_stream(params);

  // Record without a pool: no class_id bindings, but the synthetic pool
  // classes are all expressible inline.
  const auto trace = record_trace(stream, {});
  for (const auto& record : trace.records) {
    EXPECT_FALSE(record.class_id.has_value());
    ASSERT_TRUE(record.inline_class.has_value());
    ASSERT_TRUE(record.class_fingerprint.has_value());
  }

  // Replay against an empty pool reproduces every class exactly.
  auto replayed = TraceReplayer{{}}.replay(trace);
  ASSERT_TRUE(replayed.has_value()) << replayed.error().message;
  ASSERT_EQ(replayed->size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(workflow::class_fingerprint((*replayed)[i].spec),
              workflow::class_fingerprint(stream[i].spec));
  }
}

TEST(TraceReplay, DagRowsBindAgainstTheDagPool) {
  dag::DagSpec chain;
  chain.label = "replayed-chain";
  chain.iterations = 2;
  dag::DagComponent writer;
  writer.name = "writer";
  writer.ranks = 2;
  writer.compute_ns = 1e6;
  dag::DagComponent reader;
  reader.name = "reader";
  reader.ranks = 2;
  reader.analytics_ns_per_object = 100.0;
  chain.components = {writer, reader};
  chain.edges = {dag::DagEdge{"writer", "reader", {}, 0}};
  auto shared = std::make_shared<const dag::DagSpec>(std::move(chain));

  Submission original;
  original.id = 7;
  original.arrival_ns = 500;
  original.dag = shared;
  std::vector<Submission> stream{original};
  const auto trace = record_trace(stream, {});
  ASSERT_EQ(trace.records.size(), 1u);
  EXPECT_EQ(trace.records[0].dag_fingerprint,
            std::optional<std::uint64_t>{dag::class_fingerprint(*shared)});
  EXPECT_EQ(trace.records[0].label, "replayed-chain");

  // Without a DAG pool the row is a replay error; with it, the row
  // binds to the shared spec.
  TraceReplayer replayer{{}};
  auto unbound = replayer.replay(trace);
  ASSERT_FALSE(unbound.has_value());
  EXPECT_NE(unbound.error().message.find("DAG pool"), std::string::npos);

  replayer.set_dag_pool({shared});
  auto bound = replayer.replay(trace);
  ASSERT_TRUE(bound.has_value()) << bound.error().message;
  ASSERT_EQ(bound->size(), 1u);
  EXPECT_EQ((*bound)[0].dag.get(), shared.get());
  EXPECT_EQ((*bound)[0].id, 7u);
}

TEST(TraceReplay, InlineClassOfRejectsNonDefaultShapes) {
  const auto pool = small_pool();
  ASSERT_TRUE(inline_class_of(pool[0]).has_value());

  auto overridden = pool[0];
  overridden.channel_capacity = 4;
  EXPECT_FALSE(inline_class_of(overridden).has_value());

  auto nova = pool[0];
  nova.stack = WorkflowSpec::Stack::kNova;
  EXPECT_FALSE(inline_class_of(nova).has_value());
}

}  // namespace
}  // namespace pmemflow::traces
