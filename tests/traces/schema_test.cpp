#include "traces/schema.hpp"

#include <gtest/gtest.h>

#include "common/strings.hpp"

namespace pmemflow::traces {
namespace {

const char* kHeader =
    "id,arrival_ns,priority,deadline_ns,label,class_id,class_fingerprint,"
    "ranks,iterations,object_size_bytes,objects_per_rank,sim_compute_ns,"
    "analytics_compute_ns,sim_seed,sim_name,ana_name,dag_fingerprint";

std::string with_banner(const std::string& csv) {
  return "# pmemflow-trace v1\n" + csv;
}

std::string minimal_trace_text() {
  return with_banner(std::string(kHeader) +
                     "\n"
                     "0,1000,normal,,job-a,3,,,,,,,,,,,\n"
                     "1,2500,urgent,500000,job-b,5,,,,,,,,,,,\n");
}

TEST(TraceSchema, ParsesMinimalClassIdTrace) {
  auto trace = parse_trace(minimal_trace_text());
  ASSERT_TRUE(trace.has_value()) << trace.error().message;
  EXPECT_EQ(trace->version, 1u);
  ASSERT_EQ(trace->records.size(), 2u);

  const auto& first = trace->records[0];
  EXPECT_EQ(first.id, 0u);
  EXPECT_EQ(first.arrival_ns, 1000u);
  EXPECT_EQ(first.priority, service::Priority::kNormal);
  EXPECT_FALSE(first.deadline_ns.has_value());
  EXPECT_EQ(first.label, "job-a");
  EXPECT_EQ(first.class_id, std::optional<std::uint32_t>{3});
  EXPECT_FALSE(first.class_fingerprint.has_value());
  EXPECT_FALSE(first.inline_class.has_value());

  const auto& second = trace->records[1];
  EXPECT_EQ(second.priority, service::Priority::kUrgent);
  EXPECT_EQ(second.deadline_ns, std::optional<SimDuration>{500000});
}

TEST(TraceSchema, ParsesFingerprintAndInlineBindings) {
  auto trace = parse_trace(with_banner(
      std::string(kHeader) +
      "\n"
      "0,10,batch,,,,00000000deadbeef,,,,,,,,,,\n"
      "1,20,normal,,,,,8,2,1048576,16,1e+08,2097.152,000000000000002a,"
      "sim-a,ana-a,\n"));
  ASSERT_TRUE(trace.has_value()) << trace.error().message;
  ASSERT_EQ(trace->records.size(), 2u);
  EXPECT_EQ(trace->records[0].class_fingerprint,
            std::optional<std::uint64_t>{0xdeadbeefULL});
  const auto& inline_class = trace->records[1].inline_class;
  ASSERT_TRUE(inline_class.has_value());
  EXPECT_EQ(inline_class->ranks, 8u);
  EXPECT_EQ(inline_class->iterations, 2u);
  EXPECT_EQ(inline_class->object_size, 1048576u);
  EXPECT_EQ(inline_class->objects_per_rank, 16u);
  EXPECT_DOUBLE_EQ(inline_class->sim_compute_ns, 1e8);
  EXPECT_DOUBLE_EQ(inline_class->analytics_compute_ns, 2097.152);
  EXPECT_EQ(inline_class->sim_seed, 42u);
  EXPECT_EQ(inline_class->sim_name, "sim-a");
  EXPECT_EQ(inline_class->ana_name, "ana-a");
}

TEST(TraceSchema, MissingBannerRejected) {
  auto trace = parse_trace(std::string(kHeader) + "\n");
  ASSERT_FALSE(trace.has_value());
  EXPECT_NE(trace.error().message.find("version banner"),
            std::string::npos);
}

TEST(TraceSchema, UnsupportedVersionRejected) {
  auto trace = parse_trace("# pmemflow-trace v2\n" + std::string(kHeader) +
                           "\n");
  ASSERT_FALSE(trace.has_value());
  EXPECT_NE(trace.error().message.find("unsupported"), std::string::npos);
}

TEST(TraceSchema, HeaderMismatchRejected) {
  auto trace = parse_trace(with_banner("id,arrival_ns\n0,10\n"));
  ASSERT_FALSE(trace.has_value());
  EXPECT_NE(trace.error().message.find("header mismatch"),
            std::string::npos);
}

TEST(TraceSchema, BadPriorityNamesItsLine) {
  auto trace = parse_trace(with_banner(
      std::string(kHeader) + "\n0,10,normal,,,1,,,,,,,,,,,\n"
                             "1,20,wild,,,1,,,,,,,,,,,\n"));
  ASSERT_FALSE(trace.has_value());
  EXPECT_NE(trace.error().message.find("line 4"), std::string::npos)
      << trace.error().message;
  EXPECT_NE(trace.error().message.find("priority"), std::string::npos);
}

TEST(TraceSchema, BadNumberNamesColumnAndLine) {
  auto trace = parse_trace(with_banner(std::string(kHeader) +
                                       "\n0,soon,normal,,,1,,,,,,,,,,,\n"));
  ASSERT_FALSE(trace.has_value());
  EXPECT_NE(trace.error().message.find("line 3"), std::string::npos);
  EXPECT_NE(trace.error().message.find("arrival_ns"), std::string::npos);
  EXPECT_NE(trace.error().message.find("'soon'"), std::string::npos);
}

TEST(TraceSchema, RowWithoutClassReferenceRejected) {
  auto trace = parse_trace(with_banner(std::string(kHeader) +
                                       "\n0,10,normal,,job,,,,,,,,,,,,\n"));
  ASSERT_FALSE(trace.has_value());
  EXPECT_NE(trace.error().message.find("no class reference"),
            std::string::npos);
}

TEST(TraceSchema, HalfFilledInlineColumnsRejected) {
  // ranks present but the rest of the inline block missing.
  auto trace = parse_trace(with_banner(std::string(kHeader) +
                                       "\n0,10,normal,,,,,8,,,,,,,,,\n"));
  ASSERT_FALSE(trace.has_value());
  EXPECT_NE(trace.error().message.find("all-or-nothing"),
            std::string::npos);
}

TEST(TraceSchema, ParsesDagFingerprintRow) {
  auto trace = parse_trace(with_banner(
      std::string(kHeader) +
      "\n0,10,urgent,,fanout,,,,,,,,,,,,00000000cafef00d\n"));
  ASSERT_TRUE(trace.has_value()) << trace.error().message;
  ASSERT_EQ(trace->records.size(), 1u);
  const auto& record = trace->records[0];
  EXPECT_EQ(record.label, "fanout");
  EXPECT_EQ(record.dag_fingerprint,
            std::optional<std::uint64_t>{0xcafef00dULL});
  EXPECT_FALSE(record.class_id.has_value());
  EXPECT_FALSE(record.class_fingerprint.has_value());
  EXPECT_FALSE(record.inline_class.has_value());
}

TEST(TraceSchema, DagFingerprintExclusiveWithClassId) {
  auto trace = parse_trace(with_banner(
      std::string(kHeader) +
      "\n0,10,normal,,,3,,,,,,,,,,,00000000cafef00d\n"));
  ASSERT_FALSE(trace.has_value());
  EXPECT_NE(trace.error().message.find("line 3"), std::string::npos);
  EXPECT_NE(trace.error().message.find("exclusive"), std::string::npos);
}

TEST(TraceSchema, DagFingerprintExclusiveWithInlineColumns) {
  auto trace = parse_trace(with_banner(
      std::string(kHeader) +
      "\n0,10,normal,,,,,8,2,1048576,16,1e+08,2097.152,000000000000002a,"
      "sim-a,ana-a,00000000cafef00d\n"));
  ASSERT_FALSE(trace.has_value());
  EXPECT_NE(trace.error().message.find("exclusive"), std::string::npos);
}

TEST(TraceSchema, ZeroDeadlineRejected) {
  auto trace = parse_trace(with_banner(std::string(kHeader) +
                                       "\n0,10,normal,0,,1,,,,,,,,,,,\n"));
  ASSERT_FALSE(trace.has_value());
  EXPECT_NE(trace.error().message.find("deadline_ns"), std::string::npos);
}

TEST(TraceSchema, CrlfAndQuotedLabelAccepted) {
  auto trace = parse_trace(with_banner(
      std::string(kHeader) +
      "\r\n0,10,normal,,\"fluid, 3d\",1,,,,,,,,,,,\r\n"));
  ASSERT_TRUE(trace.has_value()) << trace.error().message;
  EXPECT_EQ(trace->records[0].label, "fluid, 3d");
}

TEST(TraceSchema, SerializeParseRoundTripIsExact) {
  Trace trace;
  TraceRecord pooled;
  pooled.id = 7;
  pooled.arrival_ns = 123456789;
  pooled.priority = service::Priority::kBatch;
  pooled.deadline_ns = 5 * kSecond;
  pooled.label = "label, with comma and \"quotes\"";
  pooled.class_id = 4;
  pooled.class_fingerprint = 0xabcdef0123456789ULL;
  trace.records.push_back(pooled);

  TraceRecord inline_row;
  inline_row.id = 8;
  inline_row.arrival_ns = 223456789;
  inline_row.priority = service::Priority::kUrgent;
  InlineClass inline_class;
  inline_class.object_size = 64 * kMiB;
  inline_class.objects_per_rank = 3;
  inline_class.sim_compute_ns = 0.1 + 0.2;  // not exactly representable
  inline_class.analytics_compute_ns = 1.0 / 3.0;
  inline_class.ranks = 24;
  inline_class.iterations = 5;
  inline_class.sim_seed = 0x70666c6f77ULL;
  inline_class.sim_name = "gtc-like";
  inline_class.ana_name = "matmult";
  inline_row.inline_class = inline_class;
  trace.records.push_back(inline_row);

  TraceRecord dag_row;
  dag_row.id = 9;
  dag_row.arrival_ns = 323456789;
  dag_row.priority = service::Priority::kNormal;
  dag_row.label = "fanout-analytics";
  dag_row.dag_fingerprint = 0x646167f1a9e57ULL;
  trace.records.push_back(dag_row);

  const auto text = serialize_trace(trace);
  auto parsed = parse_trace(text);
  ASSERT_TRUE(parsed.has_value()) << parsed.error().message;
  EXPECT_TRUE(*parsed == trace);
  // Canonical: a second serialize is byte-identical.
  EXPECT_EQ(serialize_trace(*parsed), text);
}

TEST(TraceSchema, LoadWriteFileRoundTrip) {
  Trace trace;
  TraceRecord record;
  record.id = 0;
  record.arrival_ns = 10;
  record.class_id = 0;
  trace.records.push_back(record);

  const std::string path = "trace_schema_test_tmp.csv";
  ASSERT_TRUE(write_trace(trace, path).has_value());
  auto loaded = load_trace(path);
  ASSERT_TRUE(loaded.has_value()) << loaded.error().message;
  EXPECT_TRUE(*loaded == trace);
  std::remove(path.c_str());
}

TEST(TraceSchema, LoadErrorsArePrefixedWithPath) {
  auto missing = load_trace("definitely-not-here.csv");
  ASSERT_FALSE(missing.has_value());
  EXPECT_NE(missing.error().message.find("definitely-not-here.csv"),
            std::string::npos);
}

}  // namespace
}  // namespace pmemflow::traces
