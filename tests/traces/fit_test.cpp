#include "traces/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "service/arrivals.hpp"
#include "traces/replay.hpp"

namespace pmemflow::traces {
namespace {

Trace evenly_spaced_trace(std::size_t count, SimDuration gap) {
  Trace trace;
  for (std::size_t i = 0; i < count; ++i) {
    TraceRecord record;
    record.id = i;
    record.arrival_ns = static_cast<SimTime>(i) * gap;
    record.class_id = static_cast<std::uint32_t>(i % 3);
    record.priority = i % 4 == 0 ? service::Priority::kUrgent
                                 : service::Priority::kNormal;
    trace.records.push_back(record);
  }
  return trace;
}

TEST(TraceFit, RecoversMeanGapAndRate) {
  const auto trace = evenly_spaced_trace(101, 1000000);  // 1 ms apart
  auto fit = fit_arrival_params(trace);
  ASSERT_TRUE(fit.has_value()) << fit.error().message;
  EXPECT_EQ(fit->records, 101u);
  EXPECT_EQ(fit->span_ns, 100u * 1000000u);
  EXPECT_DOUBLE_EQ(fit->params.mean_interarrival_ns, 1e6);
  EXPECT_DOUBLE_EQ(fit->arrival_rate_per_s, 1000.0);
  // A clockwork trace has zero gap dispersion.
  EXPECT_DOUBLE_EQ(fit->burstiness_cv, 0.0);
}

TEST(TraceFit, CountsPrioritiesAndClasses) {
  const auto trace = evenly_spaced_trace(100, 500);
  auto fit = fit_arrival_params(trace);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->urgent, 25u);
  EXPECT_EQ(fit->normal, 75u);
  EXPECT_EQ(fit->batch, 0u);
  EXPECT_EQ(fit->params.classes, 3u);
  EXPECT_DOUBLE_EQ(fit->params.urgent_fraction, 0.25);
  EXPECT_DOUBLE_EQ(fit->params.batch_fraction, 0.0);
  // 3 near-equal classes over 100 rows: entropy within a hair of max.
  EXPECT_NEAR(fit->class_mix_entropy_bits, std::log2(3.0), 1e-3);
  EXPECT_DOUBLE_EQ(fit->class_mix_entropy_max_bits, std::log2(3.0));
}

TEST(TraceFit, SingleClassHasZeroEntropy) {
  Trace trace;
  for (std::size_t i = 0; i < 10; ++i) {
    TraceRecord record;
    record.id = i;
    record.arrival_ns = static_cast<SimTime>(i + 1) * 100;
    record.class_fingerprint = 0xabcULL;
    trace.records.push_back(record);
  }
  auto fit = fit_arrival_params(trace);
  ASSERT_TRUE(fit.has_value());
  EXPECT_DOUBLE_EQ(fit->class_mix_entropy_bits, 0.0);
  EXPECT_DOUBLE_EQ(fit->class_mix_entropy_max_bits, 0.0);
  EXPECT_EQ(fit->params.classes, 1u);
}

TEST(TraceFit, TooFewRecordsRejected) {
  Trace trace;
  trace.records.push_back(TraceRecord{});
  auto fit = fit_arrival_params(trace);
  ASSERT_FALSE(fit.has_value());
  EXPECT_NE(fit.error().message.find("at least 2 records"),
            std::string::npos);
}

TEST(TraceFit, SimultaneousArrivalsRejected) {
  Trace trace;
  for (std::size_t i = 0; i < 5; ++i) {
    TraceRecord record;
    record.id = i;
    record.arrival_ns = 42;
    record.class_id = 0;
    trace.records.push_back(record);
  }
  auto fit = fit_arrival_params(trace);
  ASSERT_FALSE(fit.has_value());
  EXPECT_NE(fit.error().message.find("simultaneous"), std::string::npos);
}

TEST(TraceFit, PoissonStreamFitsCloseToGeneratorParams) {
  service::ArrivalParams params;
  params.count = 4000;
  params.classes = 8;
  params.mean_interarrival_ns = 2.0e6;
  params.urgent_fraction = 0.15;
  params.batch_fraction = 0.25;
  const auto stream = *service::make_submission_stream(params);
  const auto pool = service::make_class_pool(params.classes, params.seed);

  auto fit = fit_arrival_params(record_trace(stream, pool));
  ASSERT_TRUE(fit.has_value()) << fit.error().message;

  // MLE mean gap within 5% of the generator's parameter.
  EXPECT_NEAR(fit->params.mean_interarrival_ns,
              params.mean_interarrival_ns,
              0.05 * params.mean_interarrival_ns);
  // Priority mix within 5 points.
  EXPECT_NEAR(fit->params.urgent_fraction, params.urgent_fraction, 0.05);
  EXPECT_NEAR(fit->params.batch_fraction, params.batch_fraction, 0.05);
  // Exponential gaps: coefficient of variation near 1.
  EXPECT_NEAR(fit->burstiness_cv, 1.0, 0.1);
  // Uniform class draw: entropy close to log2(classes).
  EXPECT_EQ(fit->params.classes, 8u);
  EXPECT_NEAR(fit->class_mix_entropy_bits, std::log2(8.0), 0.05);
}

TEST(TraceFit, FittedParamsRegenerateAValidStream) {
  const auto trace = evenly_spaced_trace(200, 750000);
  auto fit = fit_arrival_params(trace);
  ASSERT_TRUE(fit.has_value());
  auto regenerated = service::make_submission_stream(fit->params);
  ASSERT_TRUE(regenerated.has_value()) << regenerated.error().message;
  EXPECT_EQ(regenerated->size(), trace.records.size());
}

}  // namespace
}  // namespace pmemflow::traces
