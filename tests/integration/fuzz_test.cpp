// Randomized property tests over the whole pipeline.
//
// For each seed, generates a random (but bounded) workflow and a random
// deployment, runs it twice, and checks the system invariants:
//   - determinism: identical runtimes and event counts across reruns;
//   - conservation: bytes read back == bytes written;
//   - integrity: every object verifies, zero checksum failures;
//   - lifecycle: every committed version is recycled exactly once;
//   - causality: serial runs order readers strictly after writers.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/executor.hpp"
#include "workloads/synthetic.hpp"

namespace pmemflow {
namespace {

struct FuzzCase {
  std::uint64_t seed;
};

workflow::WorkflowSpec random_spec(Xoshiro256& rng) {
  workloads::SyntheticSimulation::Params sim;
  // Mix of small and large object regimes, bounded for test speed.
  const Bytes sizes[] = {512,       2 * kKB,   4608,
                         64 * kKiB, 1 * kMiB,  8 * kMiB};
  sim.object_size = sizes[rng.below(6)];
  sim.objects_per_rank = 1 + rng.below(32);
  sim.compute_ns = (rng.below(2) == 0)
                       ? 0.0
                       : rng.uniform(1e5, 5e7);
  sim.real_payloads =
      sim.object_size * sim.objects_per_rank <= 4 * kMiB &&
      rng.below(2) == 0;
  sim.seed = rng();

  workloads::SyntheticAnalytics::Params analytics;
  analytics.compute_ns_per_object =
      (rng.below(2) == 0) ? 0.0 : rng.uniform(100.0, 1e6);

  const std::uint32_t ranks = static_cast<std::uint32_t>(1 + rng.below(24));
  const std::uint32_t iterations =
      static_cast<std::uint32_t>(1 + rng.below(4));
  const auto stack = (rng.below(4) == 0)
                         ? workflow::WorkflowSpec::Stack::kNova
                         : workflow::WorkflowSpec::Stack::kNvStream;
  return workloads::make_synthetic_workflow(sim, analytics, ranks,
                                            iterations, stack);
}

core::DeploymentConfig random_config(Xoshiro256& rng) {
  return core::all_configs()[rng.below(4)];
}

class FuzzPipeline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPipeline, InvariantsHold) {
  Xoshiro256 rng(GetParam());
  const auto spec = random_spec(rng);
  const auto config = random_config(rng);

  core::Executor executor;
  auto first = executor.execute(spec, config);
  ASSERT_TRUE(first.has_value()) << first.error().message;
  auto second = executor.execute(spec, config);
  ASSERT_TRUE(second.has_value());

  const auto& run = first->run;
  // Determinism.
  EXPECT_EQ(run.total_ns, second->run.total_ns) << spec.label;
  EXPECT_EQ(run.engine_events, second->run.engine_events);

  // Conservation + integrity.
  EXPECT_EQ(run.channel.payload_bytes_written,
            run.channel.payload_bytes_read);
  EXPECT_EQ(run.verification_failures, 0u);
  EXPECT_EQ(run.channel.checksum_failures, 0u);
  EXPECT_GT(run.objects_verified, 0u);

  // Lifecycle.
  EXPECT_EQ(run.channel.versions_committed, spec.iterations);
  EXPECT_EQ(run.channel.versions_recycled, spec.iterations);

  // Causality and sanity.
  EXPECT_GT(run.total_ns, 0u);
  EXPECT_LE(run.writer_span_ns, run.total_ns);
  if (config.mode == core::ExecutionMode::kSerial) {
    EXPECT_GT(run.reader_span_ns(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace pmemflow
