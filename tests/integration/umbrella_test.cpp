// Compilation + smoke test of the umbrella header: the whole public
// API must be includable from one header and usable together.
#include "pmemflow.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndThroughPublicApi) {
  using namespace pmemflow;
  core::Executor executor;
  auto spec = workloads::make_workflow(workloads::Family::kMicro64MB, 8);
  spec.iterations = 2;
  auto result = executor.execute(
      spec, core::DeploymentConfig{core::ExecutionMode::kSerial,
                                   core::Placement::kLocalWrite});
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->run.total_ns, 0u);
  EXPECT_EQ(result->run.verification_failures, 0u);
}

}  // namespace
