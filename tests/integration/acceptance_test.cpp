// Reproduction acceptance tests (DESIGN.md §4).
//
// For every figure panel of the paper's evaluation, assert which
// configuration wins under the shipped calibration. Panels marked with
// a deviation record the known, documented difference from the paper
// (EXPERIMENTS.md "Known deviations"); the test pins those too, so any
// future model drift is caught either way.
#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "workloads/suite.hpp"

namespace pmemflow {
namespace {

struct PanelCase {
  workloads::Family family;
  std::uint32_t ranks;
  /// Winner in the paper's figure.
  const char* paper_winner;
  /// Winner under the shipped calibration; equals paper_winner for
  /// reproduced panels, differs for the documented deviations.
  const char* measured_winner;
};

// Keep in sync with EXPERIMENTS.md.
const PanelCase kPanels[] = {
    {workloads::Family::kMicro64MB, 8, "S-LocW", "S-LocW"},
    {workloads::Family::kMicro64MB, 16, "S-LocW", "S-LocW"},
    {workloads::Family::kMicro64MB, 24, "S-LocW", "S-LocW"},
    {workloads::Family::kMicro2KB, 8, "P-LocR", "P-LocR"},
    {workloads::Family::kMicro2KB, 16, "P-LocR", "P-LocR"},
    {workloads::Family::kMicro2KB, 24, "S-LocR", "S-LocR"},
    {workloads::Family::kGtcReadOnly, 8, "P-LocR", "P-LocR"},
    // Deviation: burst-synchronization effect (EXPERIMENTS.md).
    {workloads::Family::kGtcReadOnly, 16, "S-LocR", "P-LocR"},
    {workloads::Family::kGtcReadOnly, 24, "S-LocW", "S-LocW"},
    {workloads::Family::kGtcMatrixMult, 8, "P-LocR", "P-LocR"},
    // Deviation: P-LocW/P-LocR within 0.1 % (EXPERIMENTS.md).
    {workloads::Family::kGtcMatrixMult, 16, "P-LocR", "P-LocW"},
    {workloads::Family::kGtcMatrixMult, 24, "S-LocW", "S-LocW"},
    {workloads::Family::kMiniAmrReadOnly, 8, "P-LocR", "P-LocR"},
    {workloads::Family::kMiniAmrReadOnly, 16, "S-LocR", "S-LocR"},
    {workloads::Family::kMiniAmrReadOnly, 24, "S-LocW", "S-LocW"},
    // Deviation: near-tie between the parallel placements.
    {workloads::Family::kMiniAmrMatrixMult, 8, "P-LocW", "P-LocR"},
    {workloads::Family::kMiniAmrMatrixMult, 16, "S-LocW", "S-LocW"},
    {workloads::Family::kMiniAmrMatrixMult, 24, "S-LocW", "S-LocW"},
};

class AcceptancePanel : public ::testing::TestWithParam<PanelCase> {};

TEST_P(AcceptancePanel, WinnerMatchesRecordedResult) {
  const PanelCase& panel = GetParam();
  core::Executor executor;
  const auto spec = workloads::make_workflow(panel.family, panel.ranks);
  auto sweep = executor.sweep(spec);
  ASSERT_TRUE(sweep.has_value()) << sweep.error().message;
  EXPECT_EQ(sweep->best().config.label(), panel.measured_winner)
      << spec.label << " (paper winner: " << panel.paper_winner << ")";
}

std::string panel_name(const ::testing::TestParamInfo<PanelCase>& info) {
  std::string name = std::string(to_string(info.param.family)) + "_" +
                     std::to_string(info.param.ranks);
  for (char& c : name) {
    if (c == '-' || c == '+') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(PaperPanels, AcceptancePanel,
                         ::testing::ValuesIn(kPanels), panel_name);

TEST(AcceptanceHeadline, MostPanelsReproduceThePaperWinner) {
  int reproduced = 0;
  int total = 0;
  for (const PanelCase& panel : kPanels) {
    ++total;
    if (std::string(panel.paper_winner) == panel.measured_winner) {
      ++reproduced;
    }
  }
  // The headline reproduction bar: at least 14 of 18 panels match the
  // paper outright; the rest are documented near-tie deviations.
  EXPECT_GE(reproduced, 14);
  EXPECT_EQ(total, 18);
}

TEST(AcceptanceHeadline, MisconfigurationPenaltyIsLarge) {
  // Paper SVII: failure to configure placement/scheduling costs up to
  // ~70 %. Check the suite-wide worst normalized runtime is at least
  // 1.5x (and finite).
  core::Executor executor;
  double worst = 1.0;
  for (const auto& spec : workloads::full_suite()) {
    auto sweep = executor.sweep(spec);
    ASSERT_TRUE(sweep.has_value());
    worst = std::max(worst, sweep->worst_case_penalty());
  }
  EXPECT_GE(worst, 1.5);
}

TEST(AcceptanceHeadline, NoSingleOptimalConfiguration) {
  // Paper SVII: "there is no single configuration which works for all
  // workflows" — the suite must have at least 3 distinct winners.
  core::Executor executor;
  std::set<std::string> winners;
  for (const auto& spec : workloads::full_suite()) {
    auto sweep = executor.sweep(spec);
    ASSERT_TRUE(sweep.has_value());
    winners.insert(sweep->best().config.label());
  }
  EXPECT_GE(winners.size(), 3u);
}

}  // namespace
}  // namespace pmemflow
