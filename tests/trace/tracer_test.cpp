#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/executor.hpp"
#include "workloads/suite.hpp"

namespace pmemflow::trace {
namespace {

TEST(Tracer, RecordsCompletedSpans) {
  Tracer tracer;
  tracer.begin("t0", "compute", 100);
  tracer.end("t0", 250);
  ASSERT_EQ(tracer.spans().size(), 1u);
  const Span& span = tracer.spans()[0];
  EXPECT_EQ(span.track, "t0");
  EXPECT_EQ(span.name, "compute");
  EXPECT_EQ(span.begin, 100u);
  EXPECT_EQ(span.end, 250u);
  EXPECT_EQ(span.duration(), 150u);
}

TEST(Tracer, SpansNestLifoPerTrack) {
  Tracer tracer;
  tracer.begin("t0", "outer", 0);
  tracer.begin("t0", "inner", 10);
  tracer.end("t0", 20);   // closes inner
  tracer.end("t0", 100);  // closes outer
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[0].name, "inner");
  EXPECT_EQ(tracer.spans()[1].name, "outer");
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(Tracer, TracksAreIndependent) {
  Tracer tracer;
  tracer.begin("a", "x", 0);
  tracer.begin("b", "y", 5);
  tracer.end("a", 10);
  EXPECT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.open_spans(), 1u);
}

TEST(Tracer, InstantsRecorded) {
  Tracer tracer;
  tracer.instant("chan", "commit v1", 42);
  ASSERT_EQ(tracer.instants().size(), 1u);
  EXPECT_EQ(tracer.instants()[0].at, 42u);
}

TEST(Tracer, StatisticsAggregateByName) {
  Tracer tracer;
  for (int i = 0; i < 3; ++i) {
    tracer.begin("t", "io", static_cast<SimTime>(i * 100));
    tracer.end("t", static_cast<SimTime>(i * 100 + 10 * (i + 1)));
  }
  const auto stats = tracer.statistics();
  ASSERT_TRUE(stats.contains("io"));
  EXPECT_EQ(stats.at("io").count, 3u);
  EXPECT_EQ(stats.at("io").total_ns, 60u);
  EXPECT_EQ(stats.at("io").min_ns, 10u);
  EXPECT_EQ(stats.at("io").max_ns, 30u);
  EXPECT_DOUBLE_EQ(stats.at("io").mean_ns(), 20.0);
}

TEST(Tracer, ChromeTraceShapeIsValid) {
  Tracer tracer;
  tracer.begin("rank \"0\"", "write\nv1", 1000);
  tracer.end("rank \"0\"", 3000);
  tracer.instant("chan", "commit", 3000);
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // Escaping of quotes and newlines.
  EXPECT_NE(json.find("rank \\\"0\\\""), std::string::npos);
  EXPECT_NE(json.find("write\\nv1"), std::string::npos);
  // No raw newline inside any string literal (escaped only).
  EXPECT_EQ(json.find("write\nv1"), std::string::npos);
}

TEST(Tracer, ClearResetsEverything) {
  Tracer tracer;
  tracer.begin("t", "x", 0);
  tracer.end("t", 1);
  tracer.instant("t", "m", 2);
  tracer.begin("t", "open", 3);
  tracer.clear();
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_TRUE(tracer.instants().empty());
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(TracerDeathTest, EndWithoutBeginAborts) {
  Tracer tracer;
  EXPECT_DEATH(tracer.end("nope", 1), "matching begin");
}

TEST(TracerDeathTest, BackwardsSpanAborts) {
  Tracer tracer;
  tracer.begin("t", "x", 100);
  EXPECT_DEATH(tracer.end("t", 50), "before it begins");
}

TEST(TracerRunner, WorkflowRunEmitsExpectedSpans) {
  Tracer tracer;
  core::Executor executor;
  auto spec = workloads::make_workflow(workloads::Family::kMicro64MB, 4);
  spec.iterations = 3;
  auto options = core::DeploymentConfig{core::ExecutionMode::kParallel,
                                        core::Placement::kLocalRead}
                     .run_options();
  options.tracer = &tracer;
  auto result = executor.runner().run(spec, options);
  ASSERT_TRUE(result.has_value());

  EXPECT_EQ(tracer.open_spans(), 0u);
  const auto stats = tracer.statistics();
  // Per version: 4 writer spans, 4 reader wait spans, 4 read spans.
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t waits = 0;
  for (const auto& [name, stat] : stats) {
    if (name.rfind("compute+write", 0) == 0) writes += stat.count;
    if (name.rfind("read+analyze", 0) == 0) reads += stat.count;
    if (name.rfind("wait", 0) == 0) waits += stat.count;
  }
  EXPECT_EQ(writes, 12u);
  EXPECT_EQ(reads, 12u);
  EXPECT_EQ(waits, 12u);
  // Commit markers on the channel track.
  EXPECT_EQ(tracer.instants().size(), 3u);
}

TEST(TracerRunner, SerialRunWaitsDominateEarlyReaders) {
  // In serial mode every reader's first wait span covers the entire
  // writer phase.
  Tracer tracer;
  core::Executor executor;
  auto spec = workloads::make_workflow(workloads::Family::kMicro64MB, 2);
  spec.iterations = 2;
  auto options = core::DeploymentConfig{core::ExecutionMode::kSerial,
                                        core::Placement::kLocalWrite}
                     .run_options();
  options.tracer = &tracer;
  auto result = executor.runner().run(spec, options);
  ASSERT_TRUE(result.has_value());

  SimDuration max_wait = 0;
  for (const Span& span : tracer.spans()) {
    if (span.name.rfind("wait", 0) == 0) {
      max_wait = std::max(max_wait, span.duration());
    }
  }
  // The longest wait is at least as long as the writer span.
  EXPECT_GE(max_wait + 1000, result->writer_span_ns);
}

}  // namespace
}  // namespace pmemflow::trace
