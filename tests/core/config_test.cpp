#include "core/config.hpp"

#include <gtest/gtest.h>

namespace pmemflow::core {
namespace {

TEST(Config, LabelsMatchTableOne) {
  EXPECT_EQ((DeploymentConfig{ExecutionMode::kSerial,
                              Placement::kLocalWrite})
                .label(),
            "S-LocW");
  EXPECT_EQ((DeploymentConfig{ExecutionMode::kSerial,
                              Placement::kLocalRead})
                .label(),
            "S-LocR");
  EXPECT_EQ((DeploymentConfig{ExecutionMode::kParallel,
                              Placement::kLocalWrite})
                .label(),
            "P-LocW");
  EXPECT_EQ((DeploymentConfig{ExecutionMode::kParallel,
                              Placement::kLocalRead})
                .label(),
            "P-LocR");
}

TEST(Config, AllConfigsInTableOneOrder) {
  const auto configs = all_configs();
  ASSERT_EQ(configs.size(), 4u);
  EXPECT_EQ(configs[0].label(), "S-LocW");
  EXPECT_EQ(configs[1].label(), "S-LocR");
  EXPECT_EQ(configs[2].label(), "P-LocW");
  EXPECT_EQ(configs[3].label(), "P-LocR");
}

TEST(Config, RunOptionsForLocalWrite) {
  const DeploymentConfig config{ExecutionMode::kSerial,
                                Placement::kLocalWrite};
  const auto options = config.run_options();
  EXPECT_TRUE(options.serial);
  EXPECT_EQ(options.channel_socket, options.writer_socket);
  EXPECT_NE(options.writer_socket, options.reader_socket);
}

TEST(Config, RunOptionsForLocalRead) {
  const DeploymentConfig config{ExecutionMode::kParallel,
                                Placement::kLocalRead};
  const auto options = config.run_options();
  EXPECT_FALSE(options.serial);
  EXPECT_EQ(options.channel_socket, options.reader_socket);
}

TEST(Config, ParseRoundTrip) {
  for (const auto& config : all_configs()) {
    const auto parsed = parse_config(config.label());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, config);
  }
}

TEST(Config, ParseRejectsUnknownLabel) {
  auto result = parse_config("X-LocQ");
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("unknown"), std::string::npos);
}

TEST(Config, ModeAndPlacementNames) {
  EXPECT_STREQ(to_string(ExecutionMode::kSerial), "Serial");
  EXPECT_STREQ(to_string(ExecutionMode::kParallel), "Parallel");
  EXPECT_STREQ(to_string(Placement::kLocalWrite),
               "local-write-remote-read");
  EXPECT_STREQ(to_string(Placement::kLocalRead),
               "remote-write-local-read");
}

}  // namespace
}  // namespace pmemflow::core
