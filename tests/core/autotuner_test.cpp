#include "core/autotuner.hpp"

#include <gtest/gtest.h>

#include "workloads/suite.hpp"

namespace pmemflow::core {
namespace {

TEST(AutoTuner, ReportIsConsistent) {
  AutoTuner tuner;
  const auto spec =
      workloads::make_workflow(workloads::Family::kMicro64MB, 8);
  auto report = tuner.tune(spec);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->sweep.results.size(), 4u);
  EXPECT_EQ(report->best, report->sweep.best().config);
  EXPECT_GE(report->rule_based_regret, 1.0);
  EXPECT_GE(report->model_based_regret, 1.0);
}

TEST(AutoTuner, RegretOfBestConfigIsOne) {
  AutoTuner tuner;
  const auto spec =
      workloads::make_workflow(workloads::Family::kMiniAmrMatrixMult, 24);
  auto report = tuner.tune(spec);
  ASSERT_TRUE(report.has_value());
  // If a recommender picked the empirical best, its regret is exactly 1.
  if (report->rule_based.config == report->best) {
    EXPECT_DOUBLE_EQ(report->rule_based_regret, 1.0);
  }
  if (report->model_based.config == report->best) {
    EXPECT_DOUBLE_EQ(report->model_based_regret, 1.0);
  }
}

TEST(AutoTuner, ModelBasedRegretIsBoundedAcrossSuite) {
  // The model-based recommender shares the simulator's allocator, so
  // its choice should never be catastrophically wrong: within 40 % of
  // the empirical best for every suite workflow.
  AutoTuner tuner;
  for (workloads::Family family : workloads::all_families()) {
    const auto spec = workloads::make_workflow(family, 16);
    auto report = tuner.tune(spec);
    ASSERT_TRUE(report.has_value()) << spec.label;
    EXPECT_LT(report->model_based_regret, 1.4) << spec.label;
  }
}

TEST(AutoTuner, ProfileIsPopulated) {
  AutoTuner tuner;
  const auto spec =
      workloads::make_workflow(workloads::Family::kGtcReadOnly, 16);
  auto report = tuner.tune(spec);
  ASSERT_TRUE(report.has_value());
  EXPECT_GT(report->profile.simulation.iteration_ns, 0.0);
  EXPECT_GT(report->profile.analytics.iteration_ns, 0.0);
  EXPECT_EQ(report->profile.ranks, 16u);
}

TEST(AutoTuner, PropagatesErrors) {
  AutoTuner tuner;
  auto spec = workloads::make_workflow(workloads::Family::kMicro64MB, 8);
  spec.ranks = 100;
  EXPECT_FALSE(tuner.tune(spec).has_value());
}

}  // namespace
}  // namespace pmemflow::core
