#include "core/executor.hpp"

#include <gtest/gtest.h>

#include "workloads/analytics.hpp"
#include "workloads/microbench.hpp"

namespace pmemflow::core {
namespace {

workflow::WorkflowSpec tiny_spec(std::uint32_t ranks = 4) {
  workloads::MicroSimulation::Params params;
  params.object_size = 256 * kKB;
  params.snapshot_bytes_per_rank = 4 * kMB;
  workflow::WorkflowSpec spec;
  spec.label = "tiny";
  spec.simulation =
      std::make_shared<const workloads::MicroSimulation>(params);
  spec.analytics = workloads::readonly_analytics();
  spec.ranks = ranks;
  spec.iterations = 3;
  return spec;
}

TEST(Executor, ExecuteSingleConfig) {
  Executor executor;
  const DeploymentConfig config{ExecutionMode::kSerial,
                                Placement::kLocalWrite};
  auto result = executor.execute(tiny_spec(), config);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->config, config);
  EXPECT_GT(result->run.total_ns, 0u);
  EXPECT_EQ(result->run.verification_failures, 0u);
}

TEST(Executor, SweepCoversAllFourConfigs) {
  Executor executor;
  auto sweep = executor.sweep(tiny_spec());
  ASSERT_TRUE(sweep.has_value());
  ASSERT_EQ(sweep->results.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sweep->results[i].config, all_configs()[i]);
    EXPECT_GT(sweep->results[i].run.total_ns, 0u);
  }
}

TEST(Executor, BestIsMinimum) {
  Executor executor;
  auto sweep = executor.sweep(tiny_spec());
  ASSERT_TRUE(sweep.has_value());
  const auto& best = sweep->best();
  for (const auto& result : sweep->results) {
    EXPECT_LE(best.run.total_ns, result.run.total_ns);
  }
}

TEST(Executor, NormalizedIsOneForBestAndAtLeastOneElsewhere) {
  Executor executor;
  auto sweep = executor.sweep(tiny_spec());
  ASSERT_TRUE(sweep.has_value());
  EXPECT_DOUBLE_EQ(sweep->normalized(sweep->best_index()), 1.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(sweep->normalized(i), 1.0);
  }
}

TEST(Executor, WorstCasePenaltyIsMaxNormalized) {
  Executor executor;
  auto sweep = executor.sweep(tiny_spec());
  ASSERT_TRUE(sweep.has_value());
  double expected = 1.0;
  for (std::size_t i = 0; i < 4; ++i) {
    expected = std::max(expected, sweep->normalized(i));
  }
  EXPECT_DOUBLE_EQ(sweep->worst_case_penalty(), expected);
}

TEST(Executor, SweepIsDeterministic) {
  Executor executor;
  auto a = executor.sweep(tiny_spec());
  auto b = executor.sweep(tiny_spec());
  ASSERT_TRUE(a.has_value() && b.has_value());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a->results[i].run.total_ns, b->results[i].run.total_ns);
  }
}

TEST(Executor, ErrorsPropagate) {
  Executor executor;
  auto spec = tiny_spec(/*ranks=*/64);  // exceeds socket cores
  auto result = executor.sweep(spec);
  EXPECT_FALSE(result.has_value());
}

}  // namespace
}  // namespace pmemflow::core
