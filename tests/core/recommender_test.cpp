#include "core/recommender.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "workloads/suite.hpp"
#include "workloads/synthetic.hpp"

namespace pmemflow::core {
namespace {

class RecommenderTest : public ::testing::Test {
 protected:
  Executor executor_;
  Characterizer characterizer_{executor_};
  Recommender recommender_;

  WorkflowProfile profile_of(const workflow::WorkflowSpec& spec) {
    auto profile = characterizer_.profile(spec);
    EXPECT_TRUE(profile.has_value());
    return *std::move(profile);
  }
};

TEST_F(RecommenderTest, EstimatesArePositiveForAllConfigs) {
  const auto spec =
      workloads::make_workflow(workloads::Family::kMicro64MB, 16);
  const auto profile = profile_of(spec);
  for (const auto& config : all_configs()) {
    EXPECT_GT(recommender_.estimate_ns(profile, spec, config), 0.0)
        << config.label();
  }
}

TEST_F(RecommenderTest, ModelBasedFillsAllPredictions) {
  const auto spec =
      workloads::make_workflow(workloads::Family::kMiniAmrReadOnly, 16);
  const auto profile = profile_of(spec);
  const auto recommendation = recommender_.model_based(profile, spec);
  for (double predicted : recommendation.predicted_ns) {
    EXPECT_GT(predicted, 0.0);
  }
  EXPECT_EQ(recommendation.table2_row, 0);
}

TEST_F(RecommenderTest, ModelBasedPicksArgmin) {
  const auto spec =
      workloads::make_workflow(workloads::Family::kMicro2KB, 8);
  const auto profile = profile_of(spec);
  const auto recommendation = recommender_.model_based(profile, spec);
  const auto configs = all_configs();
  double best = recommendation.predicted_ns[0];
  std::size_t best_index = 0;
  for (std::size_t i = 1; i < 4; ++i) {
    if (recommendation.predicted_ns[i] < best) {
      best = recommendation.predicted_ns[i];
      best_index = i;
    }
  }
  EXPECT_EQ(recommendation.config, configs[best_index]);
}

TEST_F(RecommenderTest, SerialEstimateIsSumOfPhases) {
  // For a pure-I/O workload, the serial estimate must exceed either
  // phase alone and the parallel estimate must exceed the slower phase.
  const auto spec =
      workloads::make_workflow(workloads::Family::kMicro64MB, 8);
  const auto profile = profile_of(spec);
  const double serial = recommender_.estimate_ns(
      profile, spec, {ExecutionMode::kSerial, Placement::kLocalWrite});
  const double parallel = recommender_.estimate_ns(
      profile, spec, {ExecutionMode::kParallel, Placement::kLocalWrite});
  EXPECT_GT(serial, 0.0);
  EXPECT_GT(parallel, 0.0);
}

TEST_F(RecommenderTest, RuleBasedReturnsAValidConfig) {
  // Totality: every suite workflow yields a recommendation.
  for (const auto& spec : workloads::full_suite()) {
    const auto profile = profile_of(spec);
    const auto recommendation = recommender_.rule_based(profile, spec);
    const auto label = recommendation.config.label();
    EXPECT_TRUE(label == "S-LocW" || label == "S-LocR" ||
                label == "P-LocW" || label == "P-LocR")
        << spec.label;
  }
}

TEST_F(RecommenderTest, RuleBasedMatchesTableRowsForSuiteWorkflows) {
  // The suite's workflows are exactly what Table II catalogs, so the
  // rule-based path should land in the table (row > 0) for most of
  // them rather than falling through to the model.
  int matched = 0;
  for (const auto& spec : workloads::full_suite()) {
    const auto profile = profile_of(spec);
    const auto recommendation = recommender_.rule_based(profile, spec);
    if (recommendation.table2_row > 0) ++matched;
  }
  EXPECT_GE(matched, 12);
}

TEST_F(RecommenderTest, EstimateRespectsConfigDifferences) {
  // For the bandwidth-bound 64 MB workload at high concurrency the
  // model must prefer local writes over remote writes in serial mode.
  const auto spec =
      workloads::make_workflow(workloads::Family::kMicro64MB, 24);
  const auto profile = profile_of(spec);
  const double locw = recommender_.estimate_ns(
      profile, spec, {ExecutionMode::kSerial, Placement::kLocalWrite});
  const double locr = recommender_.estimate_ns(
      profile, spec, {ExecutionMode::kSerial, Placement::kLocalRead});
  EXPECT_LT(locw, locr);
}

// Property: the model-based estimator (closed-form, same allocator as
// the simulator) must track the simulated runtime within a factor-level
// tolerance across random synthetic workflows -- it only omits
// transient effects (pipeline fill, barriers).
class EstimatorAccuracy : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EstimatorAccuracy, EstimateTracksSimulation) {
  Xoshiro256 rng(GetParam());
  workloads::SyntheticSimulation::Params sim;
  const Bytes sizes[] = {2 * kKB, 64 * kKiB, 4 * kMiB, 64 * kMB};
  sim.object_size = sizes[rng.below(4)];
  sim.objects_per_rank = 1 + rng.below(16);
  sim.compute_ns = (rng.below(2) == 0) ? 0.0 : rng.uniform(1e6, 1e8);
  sim.seed = rng();
  workloads::SyntheticAnalytics::Params analytics;
  analytics.compute_ns_per_object =
      (rng.below(2) == 0) ? 0.0 : rng.uniform(1e3, 1e6);
  const auto spec = workloads::make_synthetic_workflow(
      sim, analytics, static_cast<std::uint32_t>(2 + rng.below(23)), 8);

  Executor executor;
  Characterizer characterizer(executor);
  auto profile = characterizer.profile(spec);
  ASSERT_TRUE(profile.has_value());
  Recommender recommender;

  for (const auto& config : all_configs()) {
    auto simulated = executor.execute(spec, config);
    ASSERT_TRUE(simulated.has_value());
    const double predicted =
        recommender.estimate_ns(*profile, spec, config);
    const double actual = static_cast<double>(simulated->run.total_ns);
    ASSERT_GT(actual, 0.0);
    const double ratio = predicted / actual;
    EXPECT_GT(ratio, 0.5) << spec.label << " " << config.label();
    EXPECT_LT(ratio, 2.0) << spec.label << " " << config.label();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorAccuracy,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace pmemflow::core
