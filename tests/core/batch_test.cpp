#include "core/batch.hpp"

#include <gtest/gtest.h>

#include "workloads/suite.hpp"

namespace pmemflow::core {
namespace {

std::vector<workflow::WorkflowSpec> small_batch() {
  auto a = workloads::make_workflow(workloads::Family::kMicro64MB, 8);
  a.iterations = 2;
  auto b = workloads::make_workflow(workloads::Family::kMiniAmrReadOnly, 8);
  b.iterations = 2;
  auto c = workloads::make_workflow(workloads::Family::kMicro2KB, 8);
  c.iterations = 2;
  return {a, b, c};
}

TEST(BatchScheduler, ItemsRunBackToBack) {
  BatchScheduler scheduler;
  const auto batch = small_batch();
  auto result = scheduler.schedule(batch, BatchPolicy::kOracle);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->items.size(), 3u);
  SimTime expected_start = 0;
  for (const auto& item : result->items) {
    EXPECT_EQ(item.start_ns, expected_start);
    EXPECT_GT(item.runtime_ns, 0u);
    expected_start = item.finish_ns();
  }
  EXPECT_EQ(result->makespan_ns, expected_start);
}

TEST(BatchScheduler, FixedPoliciesUseTheFixedConfig) {
  BatchScheduler scheduler;
  const auto batch = small_batch();
  auto fixed = scheduler.schedule(batch, BatchPolicy::kFixedSLocW);
  ASSERT_TRUE(fixed.has_value());
  for (const auto& item : fixed->items) {
    EXPECT_EQ(item.config.label(), "S-LocW");
  }
  auto parallel = scheduler.schedule(batch, BatchPolicy::kFixedPLocR);
  ASSERT_TRUE(parallel.has_value());
  for (const auto& item : parallel->items) {
    EXPECT_EQ(item.config.label(), "P-LocR");
  }
}

TEST(BatchScheduler, OracleIsNeverWorseThanFixedPolicies) {
  BatchScheduler scheduler;
  const auto batch = small_batch();
  auto oracle = scheduler.schedule(batch, BatchPolicy::kOracle);
  auto fixed_serial = scheduler.schedule(batch, BatchPolicy::kFixedSLocW);
  auto fixed_parallel = scheduler.schedule(batch, BatchPolicy::kFixedPLocR);
  ASSERT_TRUE(oracle.has_value());
  ASSERT_TRUE(fixed_serial.has_value());
  ASSERT_TRUE(fixed_parallel.has_value());
  EXPECT_LE(oracle->makespan_ns, fixed_serial->makespan_ns);
  EXPECT_LE(oracle->makespan_ns, fixed_parallel->makespan_ns);
}

TEST(BatchScheduler, RecommendersAreNearOracle) {
  BatchScheduler scheduler;
  const auto batch = small_batch();
  auto oracle = scheduler.schedule(batch, BatchPolicy::kOracle);
  auto rule = scheduler.schedule(batch, BatchPolicy::kRuleBased);
  auto model = scheduler.schedule(batch, BatchPolicy::kModelBased);
  ASSERT_TRUE(oracle.has_value() && rule.has_value() && model.has_value());
  const double oracle_ns = static_cast<double>(oracle->makespan_ns);
  EXPECT_LE(static_cast<double>(rule->makespan_ns), 1.25 * oracle_ns);
  EXPECT_LE(static_cast<double>(model->makespan_ns), 1.25 * oracle_ns);
}

TEST(BatchScheduler, CompareCoversAllPolicies) {
  BatchScheduler scheduler;
  const auto batch = small_batch();
  auto results = scheduler.compare(batch);
  ASSERT_TRUE(results.has_value());
  ASSERT_EQ(results->size(), 5u);
  EXPECT_EQ((*results)[0].policy, BatchPolicy::kFixedSLocW);
  EXPECT_EQ((*results)[4].policy, BatchPolicy::kOracle);
}

TEST(BatchScheduler, EmptyBatchHasZeroMakespan) {
  BatchScheduler scheduler;
  auto result = scheduler.schedule({}, BatchPolicy::kOracle);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->items.empty());
  EXPECT_EQ(result->makespan_ns, 0u);
}

TEST(BatchScheduler, SingleWorkflowBatch) {
  BatchScheduler scheduler;
  auto spec = workloads::make_workflow(workloads::Family::kMiniAmrReadOnly, 8);
  spec.iterations = 2;
  std::vector<workflow::WorkflowSpec> batch{spec};
  auto result = scheduler.schedule(batch, BatchPolicy::kOracle);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->items.size(), 1u);
  EXPECT_EQ(result->items[0].start_ns, 0u);
  EXPECT_EQ(result->makespan_ns, result->items[0].runtime_ns);
  // A one-workflow oracle batch is exactly the workflow's best config:
  // rerunning the same spec under that config reproduces the runtime.
  auto repeat = scheduler.schedule(batch, BatchPolicy::kOracle);
  ASSERT_TRUE(repeat.has_value());
  EXPECT_EQ(repeat->items[0].config, result->items[0].config);
  EXPECT_EQ(repeat->items[0].runtime_ns, result->items[0].runtime_ns);
}

TEST(BatchScheduler, OracleAndModelBasedAgreeWithinBounds) {
  // The model-based recommender may disagree with the oracle on
  // individual workflows, but per item its chosen config can cost at
  // most the worst/best spread of that workflow's sweep — and across
  // the suite-derived batch its makespan must stay within 25% of
  // oracle while picking the identical config on most items.
  BatchScheduler scheduler;
  const auto batch = small_batch();
  auto oracle = scheduler.schedule(batch, BatchPolicy::kOracle);
  auto model = scheduler.schedule(batch, BatchPolicy::kModelBased);
  ASSERT_TRUE(oracle.has_value() && model.has_value());
  ASSERT_EQ(oracle->items.size(), model->items.size());

  std::size_t agreements = 0;
  for (std::size_t i = 0; i < oracle->items.size(); ++i) {
    // Oracle is per-item optimal, so the model's item can never beat it.
    EXPECT_GE(model->items[i].runtime_ns, oracle->items[i].runtime_ns);
    if (model->items[i].config == oracle->items[i].config) {
      ++agreements;
      EXPECT_EQ(model->items[i].runtime_ns, oracle->items[i].runtime_ns);
    }
  }
  // Majority agreement: the analytic model reproduces Table II on most
  // of the paper-derived workloads.
  EXPECT_GE(2 * agreements, oracle->items.size());
  EXPECT_LE(static_cast<double>(model->makespan_ns),
            1.25 * static_cast<double>(oracle->makespan_ns));
}

TEST(BatchScheduler, ErrorsPropagate) {
  BatchScheduler scheduler;
  auto bad = workloads::make_workflow(workloads::Family::kMicro64MB, 8);
  bad.ranks = 100;
  std::vector<workflow::WorkflowSpec> batch{bad};
  EXPECT_FALSE(scheduler.schedule(batch, BatchPolicy::kOracle).has_value());
}

TEST(BatchPolicyNames, AllDistinct) {
  EXPECT_STREQ(to_string(BatchPolicy::kFixedSLocW), "fixed-S-LocW");
  EXPECT_STREQ(to_string(BatchPolicy::kFixedPLocR), "fixed-P-LocR");
  EXPECT_STREQ(to_string(BatchPolicy::kRuleBased), "rule-based");
  EXPECT_STREQ(to_string(BatchPolicy::kModelBased), "model-based");
  EXPECT_STREQ(to_string(BatchPolicy::kOracle), "oracle");
}

}  // namespace
}  // namespace pmemflow::core
