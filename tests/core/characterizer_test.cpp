#include "core/characterizer.hpp"

#include <gtest/gtest.h>

#include "workloads/analytics.hpp"
#include "workloads/gtc.hpp"
#include "workloads/microbench.hpp"
#include "workloads/miniamr.hpp"
#include "workloads/suite.hpp"

namespace pmemflow::core {
namespace {

TEST(Characterizer, PureIoComponentHasIoIndexNearOne) {
  Characterizer characterizer;
  const auto spec = workloads::make_workflow(
      workloads::Family::kMicro64MB, 8);
  auto profile = characterizer.profile(spec);
  ASSERT_TRUE(profile.has_value());
  // Microbenchmark components perform only I/O (SIV-B).
  EXPECT_GT(profile->simulation.io_index(), 0.98);
  EXPECT_GT(profile->analytics.io_index(), 0.98);
}

TEST(Characterizer, GtcSimulationHasLowIoIndex) {
  Characterizer characterizer;
  const auto spec = workloads::make_workflow(
      workloads::Family::kGtcReadOnly, 16);
  auto profile = characterizer.profile(spec);
  ASSERT_TRUE(profile.has_value());
  // GTC is compute-heavy: "low Simulation I/O Index" (SIV-C / Fig 3).
  EXPECT_LT(profile->simulation.io_index(), 0.4);
  // The read-only analytics kernel is pure I/O.
  EXPECT_GT(profile->analytics.io_index(), 0.9);
}

TEST(Characterizer, MiniAmrSimulationIsIoHeavy) {
  Characterizer characterizer;
  const auto spec = workloads::make_workflow(
      workloads::Family::kMiniAmrReadOnly, 16);
  auto profile = characterizer.profile(spec);
  ASSERT_TRUE(profile.has_value());
  // miniAMR: I/O-heavy simulation kernel (SVI-A).
  EXPECT_GT(profile->simulation.io_index(), 0.6);
}

TEST(Characterizer, MatrixMultLowersAnalyticsIoIndex) {
  Characterizer characterizer;
  const auto readonly = characterizer.profile(workloads::make_workflow(
      workloads::Family::kMiniAmrReadOnly, 16));
  const auto matmult = characterizer.profile(workloads::make_workflow(
      workloads::Family::kMiniAmrMatrixMult, 16));
  ASSERT_TRUE(readonly.has_value() && matmult.has_value());
  EXPECT_LT(matmult->analytics.io_index(),
            readonly->analytics.io_index());
}

TEST(Characterizer, VolumesMatchTheModel) {
  Characterizer characterizer;
  const auto spec = workloads::make_workflow(
      workloads::Family::kMiniAmrReadOnly, 16);
  auto profile = characterizer.profile(spec);
  ASSERT_TRUE(profile.has_value());
  EXPECT_EQ(profile->simulation.object_size, 4608u);
  EXPECT_EQ(profile->simulation.objects_per_iteration, 33'000u);
  EXPECT_EQ(profile->simulation.bytes_per_iteration, 33'000u * 4608u);
}

TEST(Characterizer, FeatureDiscretization) {
  ComponentProfile pure_io;
  pure_io.iteration_ns = 100.0;
  pure_io.io_ns = 100.0;
  ComponentProfile compute_heavy;
  compute_heavy.iteration_ns = 100.0;
  compute_heavy.io_ns = 10.0;
  pure_io.object_size = 2048;
  compute_heavy.object_size = 2048;

  const auto features = Characterizer::derive_features(
      compute_heavy, pure_io, 24, /*small_threshold=*/16 * kKiB);
  EXPECT_EQ(features.sim_compute, Level::kHigh);
  EXPECT_EQ(features.sim_write, Level::kLow);
  EXPECT_EQ(features.analytics_compute, Level::kNil);
  EXPECT_EQ(features.analytics_read, Level::kHigh);
  EXPECT_TRUE(features.small_objects);
  EXPECT_EQ(features.concurrency, Level::kHigh);
}

TEST(Characterizer, ConcurrencyClasses) {
  ComponentProfile any;
  any.iteration_ns = 1.0;
  any.io_ns = 1.0;
  any.object_size = 64 * kMB;
  EXPECT_EQ(Characterizer::derive_features(any, any, 8, 16 * kKiB)
                .concurrency,
            Level::kLow);
  EXPECT_EQ(Characterizer::derive_features(any, any, 16, 16 * kKiB)
                .concurrency,
            Level::kMedium);
  EXPECT_EQ(Characterizer::derive_features(any, any, 24, 16 * kKiB)
                .concurrency,
            Level::kHigh);
}

TEST(Characterizer, LevelNames) {
  EXPECT_STREQ(to_string(Level::kNil), "Nil");
  EXPECT_STREQ(to_string(Level::kLow), "low");
  EXPECT_STREQ(to_string(Level::kMedium), "medium");
  EXPECT_STREQ(to_string(Level::kHigh), "high");
}

}  // namespace
}  // namespace pmemflow::core
