#include "workloads/suite.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pmemflow::workloads {
namespace {

TEST(Suite, HasEighteenWorkflows) {
  // 6 families x 3 concurrency levels (paper SIV-C: "18 total
  // workloads").
  EXPECT_EQ(full_suite().size(), 18u);
}

TEST(Suite, LabelsAreUnique) {
  std::set<std::string> labels;
  for (const auto& spec : full_suite()) {
    EXPECT_TRUE(labels.insert(spec.label).second) << spec.label;
  }
}

TEST(Suite, EveryWorkflowIsComplete) {
  for (const auto& spec : full_suite()) {
    EXPECT_NE(spec.simulation, nullptr) << spec.label;
    EXPECT_NE(spec.analytics, nullptr) << spec.label;
    EXPECT_EQ(spec.iterations, 10u) << spec.label;
    EXPECT_TRUE(spec.ranks == 8 || spec.ranks == 16 || spec.ranks == 24)
        << spec.label;
  }
}

TEST(Suite, FamilyNames) {
  EXPECT_STREQ(to_string(Family::kMicro64MB), "micro-64MB");
  EXPECT_STREQ(to_string(Family::kGtcMatrixMult), "gtc+matrixmult");
  EXPECT_STREQ(to_string(Family::kMiniAmrReadOnly), "miniamr+readonly");
}

TEST(Suite, MakeWorkflowLabels) {
  const auto spec = make_workflow(Family::kMicro2KB, 16);
  EXPECT_EQ(spec.label, "micro-2KB@16");
  EXPECT_EQ(spec.ranks, 16u);
}

TEST(Suite, StackSelectionPropagates) {
  const auto spec = make_workflow(Family::kGtcReadOnly, 8,
                                  workflow::WorkflowSpec::Stack::kNova);
  EXPECT_EQ(spec.stack, workflow::WorkflowSpec::Stack::kNova);
}

TEST(Suite, AllFamiliesInFigureOrder) {
  const auto families = all_families();
  ASSERT_EQ(families.size(), 6u);
  EXPECT_EQ(families.front(), Family::kMicro64MB);
  EXPECT_EQ(families.back(), Family::kMiniAmrMatrixMult);
}

TEST(Suite, SimulationModelsSharedAcrossConcurrency) {
  // Same family at different rank counts couples the same kernels.
  const auto a = make_workflow(Family::kGtcReadOnly, 8);
  const auto b = make_workflow(Family::kGtcReadOnly, 24);
  EXPECT_EQ(a.simulation->name(), b.simulation->name());
}

}  // namespace
}  // namespace pmemflow::workloads
