#include <gtest/gtest.h>

#include <cmath>

#include "workloads/analytics.hpp"
#include "workloads/gtc.hpp"
#include "workloads/microbench.hpp"
#include "workloads/miniamr.hpp"

namespace pmemflow::workloads {
namespace {

TEST(Micro, FactoriesMatchPaperConfigurations) {
  const auto small = micro_2kb();
  const auto large = micro_64mb();
  EXPECT_EQ(small->params().object_size, 2 * kKB);
  EXPECT_EQ(large->params().object_size, 64 * kMB);
  // 1 GB snapshot per rank per iteration (80 GB at 8 ranks x 10 iters).
  EXPECT_EQ(small->params().snapshot_bytes_per_rank, 1 * kGB);
  EXPECT_EQ(large->params().snapshot_bytes_per_rank, 1 * kGB);
}

TEST(Micro, ObjectCounts) {
  EXPECT_EQ(micro_2kb()->objects_per_snapshot(), 500'000u);
  EXPECT_EQ(micro_64mb()->objects_per_snapshot(), 15u);
}

TEST(Micro, NoComputePhase) {
  EXPECT_DOUBLE_EQ(micro_2kb()->compute_ns_per_iteration(0, 8), 0.0);
}

TEST(Micro, PartsAreDeterministicAndVersionDistinct) {
  const auto sim = micro_2kb();
  const auto a = sim->part_for(0, 8, 1);
  const auto b = sim->part_for(0, 8, 1);
  const auto c = sim->part_for(0, 8, 2);
  const auto d = sim->part_for(1, 8, 1);
  EXPECT_EQ(std::get<stack::SyntheticRun>(a),
            std::get<stack::SyntheticRun>(b));
  EXPECT_NE(std::get<stack::SyntheticRun>(a).base_seed,
            std::get<stack::SyntheticRun>(c).base_seed);
  EXPECT_NE(std::get<stack::SyntheticRun>(a).base_seed,
            std::get<stack::SyntheticRun>(d).base_seed);
}

TEST(Gtc, UsesFewLargeObjects) {
  const auto sim = gtc_simulation();
  EXPECT_EQ(sim->params().object_size, 229 * kMB);
  const auto part = sim->part_for(0, 16, 1);
  const auto& objects = std::get<std::vector<stack::ObjectData>>(part);
  EXPECT_EQ(objects.size(), sim->params().objects_per_rank);
  EXPECT_EQ(objects[0].payload.size(), 229 * kMB);
  EXPECT_TRUE(objects[0].payload.is_synthetic());
}

TEST(Gtc, ComputeShrinksWithRankCount) {
  const auto sim = gtc_simulation();
  const double at8 = sim->compute_ns_per_iteration(0, 8);
  const double at16 = sim->compute_ns_per_iteration(0, 16);
  const double at24 = sim->compute_ns_per_iteration(0, 24);
  EXPECT_GT(at8, at16);
  EXPECT_GT(at16, at24);
  // Super-linear scaling: (16/8)^exponent.
  const double exponent = sim->params().compute_scaling_exponent;
  EXPECT_NEAR(at8 / at16, std::pow(2.0, exponent), 1e-6);
}

TEST(Gtc, IsComputeHeavy) {
  // GTC's defining property: compute >> standalone I/O time.
  const auto sim = gtc_simulation();
  // Write time of 229 MB at the per-thread cap (3.5 GB/s) ~ 65 ms.
  const double io_estimate_ns = 229e6 / 3.5;
  EXPECT_GT(sim->compute_ns_per_iteration(0, 16), 4.0 * io_estimate_ns);
}

TEST(MiniAmr, BlockGeometryMatchesPaper) {
  const auto sim = miniamr_simulation();
  // 4.5 KB blocks (8^3 doubles + metadata), 528 K per snapshot.
  EXPECT_EQ(sim->block_bytes(), 4608u);
  EXPECT_EQ(sim->params().total_blocks, 528'000u);
}

TEST(MiniAmr, BlocksDecomposeAcrossRanks) {
  const auto sim = miniamr_simulation();
  EXPECT_EQ(sim->blocks_per_rank(8), 66'000u);
  EXPECT_EQ(sim->blocks_per_rank(16), 33'000u);
  EXPECT_EQ(sim->blocks_per_rank(24), 22'000u);
}

TEST(MiniAmr, PartIsARunOfBlocks) {
  const auto sim = miniamr_simulation();
  const auto part = sim->part_for(3, 16, 2);
  const auto& run = std::get<stack::SyntheticRun>(part);
  EXPECT_EQ(run.count, 33'000u);
  EXPECT_EQ(run.object_size, 4608u);
}

TEST(MiniAmr, ComputeProportionalToBlocks) {
  const auto sim = miniamr_simulation();
  const double at8 = sim->compute_ns_per_iteration(0, 8);
  const double at16 = sim->compute_ns_per_iteration(0, 16);
  EXPECT_NEAR(at8 / at16, 2.0, 1e-9);
}

TEST(Analytics, ReadOnlyHasNoCompute) {
  const auto kernel = readonly_analytics();
  EXPECT_DOUBLE_EQ(kernel->compute_ns_per_object(4608), 0.0);
  EXPECT_DOUBLE_EQ(kernel->compute_ns_per_object(229 * kMB), 0.0);
}

TEST(Analytics, MatrixMultComputeFollowsFlops) {
  MatrixMultAnalytics::Params params;
  params.matrix_edge = 100;
  params.mults_per_object = 2.0;
  params.flops_per_ns = 4.0;
  MatrixMultAnalytics kernel(params, "test-mm");
  // 2 * 100^3 FLOPs * 2 mults / 4 FLOP/ns = 1e6 ns.
  EXPECT_DOUBLE_EQ(kernel.compute_ns_per_object(1), 1e6);
}

TEST(Analytics, GtcKernelHeavierPerObjectThanMiniAmr) {
  // GTC's large arrays need far more compute per object than a 4.5 KB
  // miniAMR block (SIV-B).
  EXPECT_GT(gtc_matrixmult()->compute_ns_per_object(229 * kMB),
            100.0 * miniamr_matrixmult()->compute_ns_per_object(4608));
}

}  // namespace
}  // namespace pmemflow::workloads
