// Service-layer capacity model: opt-in dormancy, eviction under
// bounded pools, and the capacity-aware placement policy.
#include <gtest/gtest.h>

#include "service/arrivals.hpp"
#include "service/scheduler.hpp"

namespace pmemflow::service {
namespace {

/// Long-lived multi-version stream on a small fleet: the same regime
/// as bench/service_capacity, shrunk for ctest.
std::vector<Submission> capacity_stream(std::uint64_t count = 60) {
  ArrivalParams arrivals;
  arrivals.count = count;
  arrivals.classes = 6;
  arrivals.mean_interarrival_ns = 2.0e9;
  auto stream = *make_submission_stream(arrivals);
  // The pool's classes run 2 iterations; stretch to 6 so retention
  // windows and version GC have versions to work with.
  for (Submission& submission : stream) submission.spec.iterations = 6;
  return stream;
}

ServiceConfig base_config(std::uint64_t count) {
  ServiceConfig config;
  config.nodes = 2;
  config.queue_capacity = static_cast<std::size_t>(count);
  config.defer_watermark = 1.0;
  config.policy = PlacementPolicy::kLeastLoaded;
  return config;
}

capacity::ResidencyParams bounded_params(Bytes per_socket) {
  capacity::ResidencyParams params;
  params.pmem_per_socket = per_socket;
  params.retention.retain_versions = 2;
  params.retention.gc = true;
  params.staging.stage_bytes = 2 * kGiB;
  return params;
}

bool same_schedule(const std::vector<CompletionRecord>& a,
                   const std::vector<CompletionRecord>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].id != b[i].id || a[i].node != b[i].node ||
        a[i].config != b[i].config || a[i].start_ns != b[i].start_ns ||
        a[i].finish_ns != b[i].finish_ns) {
      return false;
    }
  }
  return true;
}

TEST(ServiceCapacity, UnboundedPoolsKeepTheModelDormant) {
  const auto stream = capacity_stream();
  ServiceConfig config = base_config(stream.size());

  auto off = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(off.has_value());

  // Every knob set but pmem_per_socket == 0: byte-identical schedule,
  // all-zero capacity metrics.
  config.capacity = bounded_params(0);
  auto dormant = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(dormant.has_value());

  EXPECT_TRUE(same_schedule(off->completions, dormant->completions));
  EXPECT_EQ(dormant->metrics.evictions, 0u);
  EXPECT_EQ(dormant->metrics.gc_bytes, 0u);
  EXPECT_EQ(dormant->metrics.stage_hits, 0u);
  EXPECT_EQ(dormant->metrics.residency_high_water, 0u);
}

TEST(ServiceCapacity, BoundedPoolsPopulateTheMetrics) {
  const auto stream = capacity_stream();
  ServiceConfig config = base_config(stream.size());
  config.capacity = bounded_params(64 * kGB);
  auto result = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->metrics.completed, stream.size());
  EXPECT_GT(result->metrics.residency_high_water, 0u);
  EXPECT_LE(result->metrics.residency_high_water, 64 * kGB);
  EXPECT_GT(result->metrics.gc_bytes, 0u);
  EXPECT_GT(result->metrics.stage_hits, 0u);
}

TEST(ServiceCapacity, CapacityBlindPlacementEvictsColdResidue) {
  const auto stream = capacity_stream();
  ServiceConfig config = base_config(stream.size());
  // GC off: every channel leases its full version volume and leaves it
  // all cold at finish — later dispatches must evict to fit.
  config.capacity = bounded_params(64 * kGB);
  config.capacity.retention.retain_versions = 0;
  config.capacity.retention.gc = false;
  config.capacity.staging.stage_bytes = 0;
  auto result = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->metrics.completed, stream.size());
  EXPECT_GT(result->metrics.evictions, 0u);
  EXPECT_EQ(result->metrics.gc_bytes, 0u);
}

TEST(ServiceCapacity, AwarePlacementEvictsLessThanBlind) {
  const auto stream = capacity_stream();
  ServiceConfig config = base_config(stream.size());

  config.capacity = bounded_params(64 * kGB);
  config.capacity.retention.retain_versions = 0;
  config.capacity.retention.gc = false;
  config.capacity.staging.stage_bytes = 0;
  auto blind = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(blind.has_value());

  config.policy = PlacementPolicy::kCapacityAware;
  config.capacity = bounded_params(64 * kGB);
  auto aware = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(aware.has_value());

  EXPECT_EQ(aware->metrics.completed, stream.size());
  EXPECT_LT(aware->metrics.evictions, blind->metrics.evictions);
}

TEST(ServiceCapacity, CapacityAwareWithoutTheModelIsLeastLoaded) {
  const auto stream = capacity_stream();
  ServiceConfig config = base_config(stream.size());
  auto least_loaded = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(least_loaded.has_value());

  config.policy = PlacementPolicy::kCapacityAware;
  auto aware = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(aware.has_value());

  EXPECT_TRUE(
      same_schedule(least_loaded->completions, aware->completions));
}

TEST(ServiceCapacity, BoundedRunsAreDeterministic) {
  const auto stream = capacity_stream();
  ServiceConfig config = base_config(stream.size());
  config.policy = PlacementPolicy::kCapacityAware;
  config.capacity = bounded_params(64 * kGB);
  auto a = OnlineScheduler(config).run(stream);
  auto b = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(same_schedule(a->completions, b->completions));
  EXPECT_EQ(a->metrics.evictions, b->metrics.evictions);
  EXPECT_EQ(a->metrics.gc_bytes, b->metrics.gc_bytes);
  EXPECT_EQ(a->metrics.residency_high_water,
            b->metrics.residency_high_water);
}

TEST(ServiceCapacity, DeviceSpecCapacityOverridesTheDefault) {
  // A node whose DeviceSpec carries its own capacity gets pools sized
  // from the spec, not from pmem_per_socket. The config default is an
  // absurd 1 byte: if the override were ignored, no pool could ever
  // hold a lease and the high water would stay at 1 byte.
  const auto stream = capacity_stream();
  ServiceConfig config = base_config(stream.size());
  config.capacity = bounded_params(1);

  devices::DeviceSpec spec;
  spec.capacity = 64 * kGB;
  NodeSpec node;
  node.devices = devices::NodeDevices(spec);
  config.node_specs = {node, node};
  auto result = OnlineScheduler(config).run(stream);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->metrics.completed, stream.size());
  EXPECT_GT(result->metrics.residency_high_water, 1 * kMB);
  EXPECT_LE(result->metrics.residency_high_water, 64 * kGB);
}

}  // namespace
}  // namespace pmemflow::service
