// Workflow-runner integration of the capacity models: DRAM staging
// tier and nvstream version retention + GC. The default RunOptions
// keep both disabled, and those paths must behave exactly as the
// pre-capacity runner did.
#include <gtest/gtest.h>

#include "workflow/runner.hpp"
#include "workloads/analytics.hpp"
#include "workloads/microbench.hpp"

namespace pmemflow::workflow {
namespace {

WorkflowSpec small_spec(std::uint32_t ranks = 4,
                        std::uint32_t iterations = 6) {
  workloads::MicroSimulation::Params params;
  params.object_size = 64 * kKB;
  params.snapshot_bytes_per_rank = 1 * kMB;
  WorkflowSpec spec;
  spec.label = "capacity-test";
  spec.simulation =
      std::make_shared<const workloads::MicroSimulation>(params);
  spec.analytics = workloads::readonly_analytics();
  spec.ranks = ranks;
  spec.iterations = iterations;
  return spec;
}

RunOptions base_options(bool serial = false) {
  RunOptions options;
  options.serial = serial;
  options.writer_socket = 0;
  options.reader_socket = 1;
  options.channel_socket = 0;
  return options;
}

// Snapshots truncate to whole objects: 15 x 64 kB per rank-iteration.
constexpr Bytes kVersionBytes = 15ull * 64 * kKB * 4;

TEST(RunnerCapacity, DefaultsKeepBothModelsDormant) {
  Runner runner;
  auto result = runner.run(small_spec(), base_options());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->staging.writes, 0u);
  EXPECT_EQ(result->staging.bytes_staged, 0u);
  EXPECT_EQ(result->gc_bytes, 0u);
  // Every version recycles the moment its readers finish: no residue.
  EXPECT_EQ(result->channel.versions_recycled, 6u);
  EXPECT_EQ(result->resident_bytes, 0u);
}

TEST(RunnerCapacity, StagingAbsorbsWritesAndShortensTheWriterSpan) {
  Runner runner;
  const auto spec = small_spec();
  auto baseline = runner.run(spec, base_options());
  RunOptions staged = base_options();
  staged.staging.stage_bytes = 64 * kMiB;  // generous: every part hits
  auto result = runner.run(spec, staged);
  ASSERT_TRUE(baseline.has_value());
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->staging.writes, 0u);
  EXPECT_EQ(result->staging.writes, result->staging.hits);
  EXPECT_EQ(result->staging.bytes_staged, 6 * kVersionBytes);
  EXPECT_EQ(result->staging.bytes_throttled, 0u);
  // Writers land parts at DRAM rate while drains run in the
  // background, so the simulation side finishes earlier. (The version
  // commit — and so the reader — still waits for the drain, which is
  // why end-to-end time is not asserted here.)
  EXPECT_LT(result->writer_span_ns, baseline->writer_span_ns);
  // Data still flows completely and verifies.
  EXPECT_EQ(result->verification_failures, 0u);
  EXPECT_EQ(result->channel.versions_committed, 6u);
  EXPECT_EQ(result->channel.payload_bytes_read, 6 * kVersionBytes);
}

TEST(RunnerCapacity, TinyStageThrottlesTheOverflow) {
  Runner runner;
  RunOptions staged = base_options();
  staged.staging.stage_bytes = 64 * kKiB;  // smaller than one part
  auto result = runner.run(small_spec(), staged);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->staging.bytes_throttled, 0u);
  EXPECT_EQ(result->verification_failures, 0u);
}

TEST(RunnerCapacity, RetentionKeepsTheWindowResident) {
  Runner runner;
  RunOptions options = base_options();
  options.retention.retain_versions = 2;
  options.retention.gc = true;
  auto result = runner.run(small_spec(), options);
  ASSERT_TRUE(result.has_value());
  // 6 versions, retain-2: versions 1-4 are superseded and GC'd, the
  // final two stay resident as cold residue. Reclaimed bytes cover
  // payload plus record extents, so GC yield is at least the payload
  // volume and the residue at most the retained window's payload.
  EXPECT_EQ(result->channel.versions_recycled, 4u);
  EXPECT_GE(result->gc_bytes, 4 * kVersionBytes);
  EXPECT_GT(result->resident_bytes, 0u);
  EXPECT_LE(result->resident_bytes, 2 * kVersionBytes);
  EXPECT_EQ(result->verification_failures, 0u);
}

TEST(RunnerCapacity, RetentionWithoutGcLeavesEverythingResident) {
  Runner runner;
  RunOptions options = base_options();
  options.retention.retain_versions = 2;
  options.retention.gc = false;
  auto result = runner.run(small_spec(), options);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->channel.versions_recycled, 0u);
  EXPECT_EQ(result->gc_bytes, 0u);
  EXPECT_EQ(result->resident_bytes, 6 * kVersionBytes);
}

TEST(RunnerCapacity, WindowLargerThanRunRecyclesNothing) {
  Runner runner;
  RunOptions options = base_options();
  options.retention.retain_versions = 16;
  auto result = runner.run(small_spec(), options);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->channel.versions_recycled, 0u);
  EXPECT_EQ(result->gc_bytes, 0u);
  EXPECT_EQ(result->resident_bytes, 6 * kVersionBytes);
}

TEST(RunnerCapacity, GcRewriteTrafficSlowsTheDevice) {
  // GC rewrites superseded snapshots as background device writes; the
  // shared device must see that extra traffic.
  Runner runner;
  const auto spec = small_spec();
  auto baseline = runner.run(spec, base_options());
  RunOptions options = base_options();
  options.retention.retain_versions = 1;
  auto gc = runner.run(spec, options);
  ASSERT_TRUE(baseline.has_value());
  ASSERT_TRUE(gc.has_value());
  EXPECT_GT(gc->device.bytes_written, baseline->device.bytes_written);
}

TEST(RunnerCapacity, StagingAndRetentionComposeDeterministically) {
  Runner runner;
  RunOptions options = base_options();
  options.staging.stage_bytes = 16 * kMiB;
  options.retention.retain_versions = 2;
  const auto spec = small_spec();
  auto a = runner.run(spec, options);
  auto b = runner.run(spec, options);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->total_ns, b->total_ns);
  EXPECT_EQ(a->engine_events, b->engine_events);
  EXPECT_EQ(a->gc_bytes, b->gc_bytes);
  EXPECT_EQ(a->staging.bytes_staged, b->staging.bytes_staged);
  EXPECT_EQ(a->verification_failures, 0u);
}

TEST(RunnerCapacity, SerialModeSupportsBothModels) {
  Runner runner;
  RunOptions options = base_options(/*serial=*/true);
  options.staging.stage_bytes = 64 * kMiB;
  options.retention.retain_versions = 2;
  auto result = runner.run(small_spec(), options);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->verification_failures, 0u);
  EXPECT_EQ(result->channel.versions_committed, 6u);
  EXPECT_GT(result->resident_bytes, 0u);
  EXPECT_LE(result->resident_bytes, 2 * kVersionBytes);
}

}  // namespace
}  // namespace pmemflow::workflow
