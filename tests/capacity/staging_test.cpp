#include "capacity/staging.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace pmemflow::capacity {
namespace {

StagingParams params(Bytes stage_bytes) {
  StagingParams staging;
  staging.stage_bytes = stage_bytes;
  staging.dram_write_bw = gbps(100.0);  // 100 bytes/ns
  staging.drain_write_bw = gbps(10.0);  // 10 bytes/ns
  return staging;
}

TEST(StagingTier, DisabledPassesThroughAtDrainRate) {
  StagingTier tier(params(0));
  EXPECT_FALSE(tier.enabled());
  const AbsorbResult result = tier.absorb(1000);
  EXPECT_EQ(result.absorb_ns, 100u);  // 1000 B / 10 B/ns
  EXPECT_EQ(result.staged_bytes, 0u);
  EXPECT_FALSE(result.hit);
  EXPECT_EQ(tier.used(), 0u);
  EXPECT_EQ(tier.stats().writes, 0u);
}

TEST(StagingTier, AbsorbsAtDramRateWhileRoomRemains) {
  StagingTier tier(params(10000));
  const AbsorbResult result = tier.absorb(1000);
  EXPECT_EQ(result.absorb_ns, 10u);  // 1000 B / 100 B/ns
  EXPECT_EQ(result.staged_bytes, 1000u);
  EXPECT_TRUE(result.hit);
  EXPECT_EQ(tier.used(), 1000u);
  EXPECT_EQ(tier.free(), 9000u);
  EXPECT_EQ(tier.stats().writes, 1u);
  EXPECT_EQ(tier.stats().hits, 1u);
  EXPECT_EQ(tier.stats().bytes_staged, 1000u);
  EXPECT_EQ(tier.stats().bytes_throttled, 0u);
}

TEST(StagingTier, OverflowThrottlesToDrainRate) {
  StagingTier tier(params(1000));
  ASSERT_TRUE(tier.absorb(800).hit);
  // 200 B fit at DRAM rate, the remaining 300 B throttle to drain.
  const AbsorbResult result = tier.absorb(500);
  EXPECT_EQ(result.staged_bytes, 200u);
  EXPECT_FALSE(result.hit);
  EXPECT_EQ(result.absorb_ns, 2u + 30u);
  EXPECT_EQ(tier.used(), 1000u);
  EXPECT_EQ(tier.stats().hits, 1u);
  EXPECT_EQ(tier.stats().writes, 2u);
  EXPECT_EQ(tier.stats().bytes_throttled, 300u);
}

TEST(StagingTier, FullTierThrottlesEverything) {
  StagingTier tier(params(500));
  ASSERT_EQ(tier.absorb(500).staged_bytes, 500u);
  const AbsorbResult result = tier.absorb(1000);
  EXPECT_EQ(result.staged_bytes, 0u);
  EXPECT_EQ(result.absorb_ns, 100u);  // pure drain rate
}

TEST(StagingTier, DrainFreesRoomForLaterWrites) {
  StagingTier tier(params(1000));
  ASSERT_EQ(tier.absorb(1000).staged_bytes, 1000u);
  tier.drained(600);
  EXPECT_EQ(tier.used(), 400u);
  const AbsorbResult result = tier.absorb(600);
  EXPECT_TRUE(result.hit);
  EXPECT_EQ(result.staged_bytes, 600u);
}

TEST(StagingTierDeathTest, DrainingMoreThanStagedAsserts) {
  StagingTier tier(params(1000));
  ASSERT_EQ(tier.absorb(100).staged_bytes, 100u);
  EXPECT_DEATH(tier.drained(200), "drained more than staged");
}

}  // namespace
}  // namespace pmemflow::capacity
