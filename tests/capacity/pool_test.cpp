#include "capacity/pool.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace pmemflow::capacity {
namespace {

TEST(CapacityPool, DefaultIsUnbounded) {
  CapacityPool pool;
  EXPECT_FALSE(pool.bounded());
  EXPECT_EQ(pool.capacity(), 0u);
  EXPECT_TRUE(pool.fits(~Bytes{0}));
  EXPECT_EQ(pool.free(), ~Bytes{0});
}

TEST(CapacityPool, UnboundedStillAccounts) {
  CapacityPool pool;
  ASSERT_TRUE(pool.acquire(10 * kGiB).has_value());
  EXPECT_EQ(pool.used(), 10 * kGiB);
  EXPECT_EQ(pool.high_water(), 10 * kGiB);
  pool.release(10 * kGiB);
  EXPECT_EQ(pool.used(), 0u);
  EXPECT_EQ(pool.high_water(), 10 * kGiB);
}

TEST(CapacityPool, BoundedAcquireRelease) {
  CapacityPool pool(4 * kGiB);
  EXPECT_TRUE(pool.bounded());
  EXPECT_EQ(pool.free(), 4 * kGiB);
  ASSERT_TRUE(pool.acquire(3 * kGiB).has_value());
  EXPECT_EQ(pool.used(), 3 * kGiB);
  EXPECT_EQ(pool.free(), 1 * kGiB);
  EXPECT_TRUE(pool.fits(1 * kGiB));
  EXPECT_FALSE(pool.fits(1 * kGiB + 1));
  pool.release(2 * kGiB);
  EXPECT_EQ(pool.used(), 1 * kGiB);
  EXPECT_TRUE(pool.fits(3 * kGiB));
}

TEST(CapacityPool, RejectedAcquireHasNoSideEffects) {
  CapacityPool pool(1 * kGiB);
  ASSERT_TRUE(pool.acquire(512 * kMiB).has_value());
  auto status = pool.acquire(1 * kGiB);
  ASSERT_FALSE(status.has_value());
  EXPECT_NE(status.error().message.find("capacity"), std::string::npos);
  EXPECT_EQ(pool.used(), 512 * kMiB);
  EXPECT_EQ(pool.high_water(), 512 * kMiB);
}

TEST(CapacityPool, HighWaterTracksPeakNotCurrent) {
  CapacityPool pool(8 * kGiB);
  ASSERT_TRUE(pool.acquire(5 * kGiB).has_value());
  pool.release(4 * kGiB);
  ASSERT_TRUE(pool.acquire(2 * kGiB).has_value());
  EXPECT_EQ(pool.used(), 3 * kGiB);
  EXPECT_EQ(pool.high_water(), 5 * kGiB);
}

TEST(CapacityPoolDeathTest, OverReleaseAsserts) {
  CapacityPool pool(1 * kGiB);
  ASSERT_TRUE(pool.acquire(1 * kMiB).has_value());
  EXPECT_DEATH(pool.release(2 * kMiB), "release");
}

}  // namespace
}  // namespace pmemflow::capacity
