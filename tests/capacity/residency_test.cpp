#include "capacity/residency.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace pmemflow::capacity {
namespace {

/// Two nodes x two sockets, 10 GiB each.
ResidencyTracker small_fleet(Bytes per_socket = 10 * kGiB) {
  return ResidencyTracker(
      {{per_socket, per_socket}, {per_socket, per_socket}});
}

TEST(ResidencyTracker, DefaultConstructedIsEmpty) {
  ResidencyTracker tracker;
  EXPECT_TRUE(tracker.empty());
  EXPECT_EQ(tracker.nodes(), 0u);
  EXPECT_EQ(tracker.residency_high_water(), 0u);
}

TEST(ResidencyTracker, PoolsAreIndependentPerNodeAndSocket) {
  ResidencyTracker tracker = small_fleet();
  ASSERT_TRUE(tracker.acquire(0, 0, 6 * kGiB).has_value());
  ASSERT_TRUE(tracker.acquire(1, 1, 2 * kGiB).has_value());
  EXPECT_EQ(tracker.pool(0, 0).used(), 6 * kGiB);
  EXPECT_EQ(tracker.pool(0, 1).used(), 0u);
  EXPECT_EQ(tracker.pool(1, 0).used(), 0u);
  EXPECT_EQ(tracker.pool(1, 1).used(), 2 * kGiB);
  EXPECT_FALSE(tracker.fits(0, 0, 5 * kGiB));
  EXPECT_TRUE(tracker.fits(0, 1, 5 * kGiB));
  tracker.release(0, 0, 6 * kGiB);
  EXPECT_TRUE(tracker.fits(0, 0, 10 * kGiB));
}

TEST(ResidencyTracker, ZeroCapacitySocketIsUnbounded) {
  ResidencyTracker tracker({{0, 4 * kGiB}});
  EXPECT_FALSE(tracker.pool(0, 0).bounded());
  EXPECT_TRUE(tracker.fits(0, 0, 100 * kGiB));
  EXPECT_TRUE(tracker.pool(0, 1).bounded());
  EXPECT_FALSE(tracker.fits(0, 1, 100 * kGiB));
}

TEST(ResidencyTracker, ColdResidueCountsAsEvictable) {
  ResidencyTracker tracker = small_fleet();
  ASSERT_TRUE(tracker.acquire(0, 0, 8 * kGiB).has_value());
  tracker.add_cold(0, 0, /*id=*/1, 5 * kGiB, /*finished_ns=*/100);
  tracker.add_cold(0, 0, /*id=*/2, 3 * kGiB, /*finished_ns=*/200);
  EXPECT_EQ(tracker.evictable_bytes(0, 0), 8 * kGiB);
  EXPECT_FALSE(tracker.fits(0, 0, 6 * kGiB));
  EXPECT_TRUE(tracker.fits_after_eviction(0, 0, 6 * kGiB));
  EXPECT_FALSE(tracker.fits_after_eviction(0, 0, 11 * kGiB));
}

TEST(ResidencyTracker, EvictsOldestFirstUntilTheLeaseFits) {
  ResidencyTracker tracker = small_fleet();
  ASSERT_TRUE(tracker.acquire(0, 0, 9 * kGiB).has_value());
  tracker.add_cold(0, 0, 1, 4 * kGiB, 100);
  tracker.add_cold(0, 0, 2, 5 * kGiB, 200);
  // 3 GiB needs only the oldest resident evicted (frees 4 GiB).
  EXPECT_EQ(tracker.evict_cold(0, 0, 3 * kGiB), 4 * kGiB);
  EXPECT_EQ(tracker.pool(0, 0).used(), 5 * kGiB);
  EXPECT_EQ(tracker.stats().evictions, 1u);
  EXPECT_EQ(tracker.stats().evicted_bytes, 4 * kGiB);
  // The younger resident survives and is still collectable by id.
  EXPECT_EQ(tracker.collect_cold(0, 0, 2), 5 * kGiB);
  EXPECT_EQ(tracker.pool(0, 0).used(), 0u);
}

TEST(ResidencyTracker, EvictionStopsWhenNothingColdRemains) {
  ResidencyTracker tracker = small_fleet();
  ASSERT_TRUE(tracker.acquire(0, 0, 9 * kGiB).has_value());
  tracker.add_cold(0, 0, 1, 2 * kGiB, 100);
  // 20 GiB can never fit; eviction still drains all cold residue.
  EXPECT_EQ(tracker.evict_cold(0, 0, 20 * kGiB), 2 * kGiB);
  EXPECT_EQ(tracker.stats().evictions, 1u);
  EXPECT_EQ(tracker.evictable_bytes(0, 0), 0u);
}

TEST(ResidencyTracker, EvictionIsANoOpWhenTheLeaseAlreadyFits) {
  ResidencyTracker tracker = small_fleet();
  ASSERT_TRUE(tracker.acquire(0, 0, 4 * kGiB).has_value());
  tracker.add_cold(0, 0, 1, 4 * kGiB, 100);
  EXPECT_EQ(tracker.evict_cold(0, 0, 2 * kGiB), 0u);
  EXPECT_EQ(tracker.stats().evictions, 0u);
}

TEST(ResidencyTracker, CollectColdDoesNotCountAnEviction) {
  ResidencyTracker tracker = small_fleet();
  ASSERT_TRUE(tracker.acquire(0, 0, 3 * kGiB).has_value());
  tracker.add_cold(0, 0, 7, 3 * kGiB, 100);
  EXPECT_EQ(tracker.collect_cold(0, 0, 7), 3 * kGiB);
  EXPECT_EQ(tracker.stats().evictions, 0u);
  EXPECT_EQ(tracker.stats().evicted_bytes, 0u);
  // Absent ids collect nothing.
  EXPECT_EQ(tracker.collect_cold(0, 0, 7), 0u);
}

TEST(ResidencyTracker, ZeroByteColdResidueIsIgnored) {
  ResidencyTracker tracker = small_fleet();
  tracker.add_cold(0, 0, 1, 0, 100);
  EXPECT_EQ(tracker.evictable_bytes(0, 0), 0u);
}

TEST(ResidencyTracker, GcBytesAccumulate) {
  ResidencyTracker tracker = small_fleet();
  tracker.note_gc(1 * kGiB);
  tracker.note_gc(2 * kGiB);
  EXPECT_EQ(tracker.stats().gc_bytes, 3 * kGiB);
}

TEST(ResidencyTracker, HighWaterIsTheFleetPeak) {
  ResidencyTracker tracker = small_fleet();
  ASSERT_TRUE(tracker.acquire(0, 0, 2 * kGiB).has_value());
  ASSERT_TRUE(tracker.acquire(1, 1, 7 * kGiB).has_value());
  tracker.release(1, 1, 7 * kGiB);
  EXPECT_EQ(tracker.residency_high_water(), 7 * kGiB);
}

TEST(ResidencyTrackerDeathTest, OutOfRangeSocketAsserts) {
  ResidencyTracker tracker = small_fleet();
  EXPECT_DEATH((void)tracker.pool(0, 2), "socket out of range");
  EXPECT_DEATH((void)tracker.pool(2, 0), "node out of range");
}

}  // namespace
}  // namespace pmemflow::capacity
