#include "capacity/lifecycle.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace pmemflow::capacity {
namespace {

RetentionParams retain(std::uint32_t versions, bool gc = true) {
  RetentionParams retention;
  retention.retain_versions = versions;
  retention.gc = gc;
  return retention;
}

TEST(Retention, DisabledHoldsOneVersion) {
  // retain_versions == 0 is the pre-capacity behaviour: only the
  // in-flight version is live.
  EXPECT_EQ(retained_versions(retain(0), 10), 1u);
  EXPECT_EQ(retained_bytes(1 * kGiB, 10, retain(0)), 1 * kGiB);
}

TEST(Retention, WindowClampsToIterations) {
  EXPECT_EQ(retained_versions(retain(3), 10), 3u);
  EXPECT_EQ(retained_versions(retain(16), 10), 10u);
  EXPECT_EQ(retained_versions(retain(3), 1), 1u);
  EXPECT_EQ(retained_versions(retain(3), 0), 1u);
}

TEST(Retention, RetainedBytesScaleWithWindow) {
  EXPECT_EQ(retained_bytes(2 * kGiB, 8, retain(3)), 6 * kGiB);
  EXPECT_EQ(retained_bytes(2 * kGiB, 2, retain(3)), 4 * kGiB);
}

TEST(Retention, GcReclaimsEverythingBeyondTheWindow) {
  EXPECT_EQ(gc_reclaimable_bytes(1 * kGiB, 10, retain(2)), 8 * kGiB);
  // Runs shorter than the window supersede nothing.
  EXPECT_EQ(gc_reclaimable_bytes(1 * kGiB, 2, retain(2)), 0u);
}

TEST(Retention, GcReclaimsNothingWhenOff) {
  EXPECT_EQ(gc_reclaimable_bytes(1 * kGiB, 10, retain(0)), 0u);
  EXPECT_EQ(gc_reclaimable_bytes(1 * kGiB, 10, retain(2, /*gc=*/false)), 0u);
}

TEST(Retention, GcDrainChargesTheConfiguredRate) {
  RetentionParams retention = retain(2);
  retention.gc_write_bw = gbps(10.0);  // 10 bytes per ns
  EXPECT_EQ(gc_drain_ns(1000, retention), 100u);
  EXPECT_EQ(gc_drain_ns(0, retention), 0u);
}

TEST(NovaGrowth, MetadataGrowsUpToTheCheckpointInterval) {
  NovaGrowthParams growth;
  growth.log_bytes_per_op = 100.0;
  growth.journal_bytes_per_op = 60.0;
  growth.checkpoint_interval_ops = 1000;
  // Below the interval the footprint is linear in total ops.
  EXPECT_EQ(metadata_peak_bytes(growth, 100, 4), 160 * 400u);
  // Beyond it, checkpoint-truncate caps the peak at one interval.
  EXPECT_EQ(metadata_peak_bytes(growth, 1000, 4), 160 * 1000u);
}

TEST(NovaGrowth, ZeroIntervalNeverTruncates) {
  NovaGrowthParams growth;
  growth.log_bytes_per_op = 100.0;
  growth.journal_bytes_per_op = 60.0;
  growth.checkpoint_interval_ops = 0;
  EXPECT_EQ(metadata_peak_bytes(growth, 1 << 20, 8), 160ull * (8u << 20));
}

TEST(NovaGrowth, NegativePerOpRatesClampToZero) {
  NovaGrowthParams growth;
  growth.log_bytes_per_op = -1.0;
  growth.journal_bytes_per_op = 64.0;
  growth.checkpoint_interval_ops = 0;
  EXPECT_EQ(metadata_peak_bytes(growth, 10, 1), 640u);
}

TEST(Lease, ComposesSnapshotAndMetadataTerms) {
  NovaGrowthParams growth;
  growth.log_bytes_per_op = 96.0;
  growth.journal_bytes_per_op = 64.0;
  growth.checkpoint_interval_ops = 1u << 16;
  const ChannelLease lease =
      estimate_lease(1 * kGiB, 512, 6, retain(2), growth);
  EXPECT_EQ(lease.snapshot_bytes, retained_bytes(1 * kGiB, 6, retain(2)));
  EXPECT_EQ(lease.metadata_bytes, metadata_peak_bytes(growth, 512, 6));
  EXPECT_EQ(lease.total(), lease.snapshot_bytes + lease.metadata_bytes);
}

}  // namespace
}  // namespace pmemflow::capacity
