// Shared driver for the figure-reproduction benches.
//
// Each bench binary reproduces one figure of the paper: it runs the
// figure's workflow at each concurrency panel under all four Table I
// configurations, prints the runtime series (split writer/reader bars
// for serial modes, as in the paper), states the measured winner next
// to the paper's winner, and optionally dumps CSV (--csv <path>).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workloads/suite.hpp"

namespace pmemflow::bench {

struct Panel {
  std::uint32_t ranks;
  /// The configuration the paper's figure shows winning this panel.
  const char* paper_winner;
  /// Short annotation, e.g. "Fig 4a, 80 GB".
  const char* caption;
};

struct FigureSpec {
  /// e.g. "Fig 4: Benchmark Writer + Reader with 64MB objects".
  std::string title;
  workloads::Family family;
  std::vector<Panel> panels;
  workflow::WorkflowSpec::Stack stack =
      workflow::WorkflowSpec::Stack::kNvStream;
};

/// Runs the figure and prints it; returns a process exit code
/// (0 even when the measured winner deviates — benches report, tests
/// enforce). Accepts --csv <path> and --quiet.
int run_figure(int argc, char** argv, const FigureSpec& figure);

}  // namespace pmemflow::bench
