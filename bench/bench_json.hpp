// Read-modify-write helper for the benchmark summary JSON that CI
// uploads as an artifact (BENCH_service.json at the repo root).
//
// Each service bench owns one top-level section and leaves whatever
// the other benches wrote untouched, so running the benches in any
// order (or re-running one) converges on the same file. The parser
// only needs to understand the subset this helper itself emits: an
// object of named object sections with numeric leaf values.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace pmemflow::bench {

class BenchJson {
 public:
  /// Loads `path` if it exists (a missing or unparsable file starts
  /// empty — the bench then recreates it).
  explicit BenchJson(std::string path);

  /// Replaces (or appends) `section` with the given key → value pairs,
  /// preserving insertion order.
  void set_section(const std::string& section,
                   const std::vector<std::pair<std::string, double>>& values);

  /// Rewrites the file with every section, kept or replaced. Returns
  /// false on I/O failure.
  [[nodiscard]] bool write() const;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  /// Section name → raw JSON value text, in file order.
  std::vector<std::pair<std::string, std::string>> sections_;
};

}  // namespace pmemflow::bench
