// Batch-scheduling extension bench (paper §X future work).
//
// Feeds the full 18-workflow suite as a job queue to the
// BatchScheduler under every policy and reports makespans: what a
// PMEM-unaware scheduler costs versus Table II, the model-based
// scheduler, and the oracle. This quantifies the end-to-end value of
// the paper's recommendations in an actual scheduling loop.
#include <cstring>
#include <iostream>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/batch.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace pmemflow;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    }
  }

  std::cout << "=== Batch scheduling: makespan of the 18-workflow suite "
               "===\n\n";

  core::BatchScheduler scheduler;
  const auto batch = workloads::full_suite();
  auto results = scheduler.compare(batch);
  if (!results.has_value()) {
    std::cerr << "error: " << results.error().message << "\n";
    return 1;
  }

  const double oracle_ns =
      static_cast<double>(results->back().makespan_ns);
  TextTable table({"Policy", "Makespan", "vs oracle", ""},
                  {Align::kLeft, Align::kRight, Align::kRight,
                   Align::kLeft});
  CsvWriter csv({"policy", "makespan_s", "vs_oracle"});
  for (const auto& result : *results) {
    const double makespan = static_cast<double>(result.makespan_ns);
    table.add_row({to_string(result.policy),
                   format("%.1f s", makespan / 1e9),
                   format("%.2fx", makespan / oracle_ns),
                   ascii_bar(makespan, makespan, 1).empty()
                       ? ""
                       : ascii_bar(makespan / oracle_ns, 2.0, 30)});
    csv.add_row({to_string(result.policy), format("%.6f", makespan / 1e9),
                 format("%.4f", makespan / oracle_ns)});
  }
  table.write(std::cout);

  // Per-workflow decisions of the rule-based policy vs the oracle.
  std::cout << "\nrule-based decisions vs oracle:\n";
  const auto& rule = (*results)[2];
  const auto& oracle = (*results)[4];
  int agree = 0;
  for (std::size_t i = 0; i < rule.items.size(); ++i) {
    if (rule.items[i].config == oracle.items[i].config) {
      ++agree;
    } else {
      std::cout << format("  %-24s rule %-6s oracle %-6s (+%.1f%%)\n",
                          rule.items[i].label.c_str(),
                          rule.items[i].config.label().c_str(),
                          oracle.items[i].config.label().c_str(),
                          (static_cast<double>(rule.items[i].runtime_ns) /
                               static_cast<double>(
                                   oracle.items[i].runtime_ns) -
                           1.0) *
                              100.0);
    }
  }
  std::cout << format("  agreement on %d/%zu workflows\n", agree,
                      rule.items.size());

  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return 0;
}
