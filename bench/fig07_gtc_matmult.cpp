// Reproduces Fig 7: GTC + MatrixMult. The analytics' interleaved
// compute hides access latency and keeps effective read concurrency
// low, so parallel local-read stays optimal through 16 ranks; at 24
// the workflow becomes bandwidth constrained and S-LocW wins (SVI-A/D).
#include "bench/common.hpp"

int main(int argc, char** argv) {
  pmemflow::bench::FigureSpec figure;
  figure.title = "Fig 7: GTC + matrixmult";
  figure.family = pmemflow::workloads::Family::kGtcMatrixMult;
  figure.panels = {
      {8, "P-LocR", "Fig 7a"},
      {16, "P-LocR", "Fig 7b"},
      {24, "S-LocW", "Fig 7c"},
  };
  return pmemflow::bench::run_figure(argc, argv, figure);
}
