// Online-service throughput bench (service-subsystem extension).
//
// Drives >= 100k Poisson submissions over a pool of synthetic workflow
// classes through the online scheduler under each placement policy and
// compares mean/P99 queueing delay, makespan, slowdown vs oracle, and
// utilization. The PMEM-unaware policies (first-fit, least-loaded) run
// everything under one fixed Table I configuration; recommender-aware
// combines least-loaded placement with the paper's per-class
// recommendation — the delta between them is the online, fleet-level
// value of Table II. The profile cache is what makes the scale
// practical: ~dozens of characterizations serve 100k submissions.
//
// Expect first-fit and least-loaded to tie exactly: under sustained
// load at most one node is idle at each dispatch, so every placement
// rule degenerates to "the node that just freed"; only the
// configuration choice still has leverage.
//
//   service_throughput [--submissions N] [--nodes N] [--smoke]
//                      [--csv out.csv] [--json f]
//
// --smoke shrinks the stream for CI tier-1. The run also appends a
// "service_throughput" section (wall-clock events/sec and the
// recommender-aware p99 delay) to BENCH_service.json for the CI
// artifact.
#include <chrono>
#include <cstring>
#include <iostream>

#include "bench_json.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "service/arrivals.hpp"
#include "service/scheduler.hpp"

int main(int argc, char** argv) {
  using namespace pmemflow;

  std::uint64_t submissions = 100000;
  std::uint32_t nodes = 8;
  bool smoke = false;
  std::string csv_path;
  std::string json_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--submissions") == 0 && i + 1 < argc) {
      submissions = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (smoke) submissions = std::min<std::uint64_t>(submissions, 5000);

  service::ArrivalParams arrivals;
  arrivals.count = submissions;
  arrivals.classes = 24;
  // Mean gap tuned to straddle the stability boundary on an 8-node
  // fleet: under the fixed configuration the offered load is just
  // above capacity (queues grow), under per-class recommendations it
  // is just below (queues stay bounded) — the regime where config
  // choice matters most at fleet level.
  arrivals.mean_interarrival_ns = 150.0e6;
  const auto stream = *service::make_submission_stream(arrivals);

  std::cout << format(
      "=== Online service: %llu submissions, %u classes, %u nodes ===\n\n",
      static_cast<unsigned long long>(arrivals.count), arrivals.classes,
      nodes);

  service::ServiceConfig config;
  config.nodes = nodes;
  // Size the queue to the stream so every submission is admitted: the
  // three policies then complete identical work and the delay/makespan
  // deltas are purely scheduling quality. (Admission control under
  // saturation is exercised by tests/service and pmemflowd instead.)
  config.queue_capacity = static_cast<std::size_t>(submissions);
  config.defer_watermark = 1.0;  // no deferrals: identical completion sets

  struct PolicyOutcome {
    service::PlacementPolicy policy;
    service::ServiceMetrics metrics;
  };
  std::vector<PolicyOutcome> outcomes;

  TextTable table({"Policy", "Completed", "Mean delay", "P99 delay",
                   "Makespan", "Slowdown", "Util", "Cache hits"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  CsvWriter csv(service::service_csv_header());

  // Wall-clock accounting for the throughput section of
  // BENCH_service.json: completions + retries across every policy
  // run, over the time spent inside run().
  std::uint64_t events_processed = 0;
  double wall_seconds = 0.0;

  for (const auto policy : {service::PlacementPolicy::kFirstFit,
                            service::PlacementPolicy::kLeastLoaded,
                            service::PlacementPolicy::kRecommenderAware}) {
    config.policy = policy;
    service::OnlineScheduler scheduler(config);
    const auto wall_start = std::chrono::steady_clock::now();
    auto result = scheduler.run(stream);
    wall_seconds += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall_start)
                        .count();
    if (!result.has_value()) {
      std::cerr << "error: " << result.error().message << "\n";
      return 1;
    }
    const auto& m = result->metrics;
    events_processed += m.completed + m.retries;
    outcomes.push_back({policy, m});
    table.add_row(
        {to_string(policy),
         format("%llu", static_cast<unsigned long long>(m.completed)),
         format("%.2f ms", m.queue_delay_ns.mean / 1e6),
         format("%.2f ms", m.queue_delay_ns.p99 / 1e6),
         format("%.3f s", static_cast<double>(m.makespan_ns) / 1e9),
         format("%.4fx", m.slowdown.mean),
         format("%.1f %%", 100.0 * m.mean_utilization),
         format("%.1f %%", 100.0 * m.cache.hit_rate())});
    append_service_csv_row(csv, to_string(policy), m);
  }
  table.write(std::cout);

  // Acceptance: the recommender-aware policy must beat both
  // fixed-config policies on mean queueing delay and total makespan.
  const auto& aware = outcomes.back().metrics;
  bool wins = true;
  for (std::size_t i = 0; i + 1 < outcomes.size(); ++i) {
    const auto& fixed = outcomes[i].metrics;
    const bool beats = aware.queue_delay_ns.mean < fixed.queue_delay_ns.mean &&
                       aware.makespan_ns < fixed.makespan_ns;
    std::cout << format(
        "\nrecommender-aware vs %-13s delay %.2fx  makespan %.2fx  %s",
        to_string(outcomes[i].policy),
        fixed.queue_delay_ns.mean / aware.queue_delay_ns.mean,
        static_cast<double>(fixed.makespan_ns) /
            static_cast<double>(aware.makespan_ns),
        beats ? "WIN" : "LOSS");
    wins = wins && beats;
  }
  std::cout << "\n\nresult: "
            << (wins ? "recommender-aware wins on mean delay and makespan"
                     : "recommender-aware does NOT dominate (unexpected)")
            << "\n";

  const auto& recommender = outcomes.back().metrics;
  bench::BenchJson json(json_path);
  json.set_section(
      "service_throughput",
      {{"submissions", static_cast<double>(submissions)},
       {"nodes", static_cast<double>(nodes)},
       {"policy_runs", static_cast<double>(outcomes.size())},
       {"wall_seconds", wall_seconds},
       {"events_per_sec",
        wall_seconds > 0.0 ? static_cast<double>(events_processed) /
                                 wall_seconds
                           : 0.0},
       {"submissions_per_sec",
        wall_seconds > 0.0
            ? static_cast<double>(submissions * outcomes.size()) /
                  wall_seconds
            : 0.0},
       {"p99_delay_ms", recommender.queue_delay_ns.p99 / 1e6},
       {"pass", wins ? 1.0 : 0.0}});
  if (!json.write()) {
    std::cerr << "error: could not write " << json_path << "\n";
    return 1;
  }
  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return wins ? 0 : 1;
}
