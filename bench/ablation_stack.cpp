// Stack ablation (§VII "Observations not tied to a particular storage
// mechanism"): reruns representative workflows over NOVA instead of
// NVStream. Expectation from the paper: large-object workflows show
// the same configuration trends on both stacks; small-object workflows
// shift because NOVA's per-op syscall/journal overhead changes the
// effective PMEM concurrency.
#include <cstring>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/executor.hpp"
#include "metrics/report.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace pmemflow;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    }
  }

  std::cout << "=== Stack ablation: NVStream vs NOVA (paper SVII) ===\n\n";

  core::Executor executor;
  TextTable table({"Workflow", "Stack", "Best", "S-LocW", "S-LocR",
                   "P-LocW", "P-LocR"},
                  {Align::kLeft, Align::kLeft, Align::kLeft, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight});
  CsvWriter csv({"workflow", "stack", "config", "total_s", "normalized"});

  const struct {
    workloads::Family family;
    std::uint32_t ranks;
  } cases[] = {
      {workloads::Family::kGtcReadOnly, 16},     // large objects
      {workloads::Family::kGtcReadOnly, 24},     // large objects
      {workloads::Family::kMicro2KB, 16},        // small objects
      {workloads::Family::kMiniAmrReadOnly, 16}, // small objects
  };

  int same_winner_large = 0;
  int large_cases = 0;
  for (const auto& test_case : cases) {
    std::string winners[2];
    for (int stack_index = 0; stack_index < 2; ++stack_index) {
      const auto stack = (stack_index == 0)
                             ? workflow::WorkflowSpec::Stack::kNvStream
                             : workflow::WorkflowSpec::Stack::kNova;
      const auto spec =
          workloads::make_workflow(test_case.family, test_case.ranks, stack);
      auto sweep = executor.sweep(spec);
      if (!sweep.has_value()) {
        std::cerr << "error: " << sweep.error().message << "\n";
        return 1;
      }
      std::vector<std::string> row = {spec.label,
                                      std::string(to_string(stack)),
                                      sweep->best().config.label()};
      for (std::size_t i = 0; i < sweep->results.size(); ++i) {
        row.push_back(format(
            "%.2fs", metrics::to_seconds(sweep->results[i].run.total_ns)));
        csv.add_row({spec.label, std::string(to_string(stack)),
                     sweep->results[i].config.label(),
                     format("%.6f", metrics::to_seconds(
                                        sweep->results[i].run.total_ns)),
                     format("%.4f", sweep->normalized(i))});
      }
      table.add_row(row);
      winners[stack_index] = sweep->best().config.label();
    }
    const bool large = test_case.family == workloads::Family::kGtcReadOnly;
    if (large) {
      ++large_cases;
      if (winners[0] == winners[1]) ++same_winner_large;
    }
  }
  table.write(std::cout);
  std::cout << format(
      "\nlarge-object workflows with identical winners on both stacks: "
      "%d/%d (paper: \"similar trends with both NOVA and NVStream for "
      "large objects\")\n",
      same_winner_large, large_cases);

  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return 0;
}
