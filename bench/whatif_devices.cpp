// Extension: would the recommendations survive the next device?
//
// Optane gen1 (the paper's testbed) is discontinued; the lasting
// question is whether PMEM-aware scheduling still matters on successor
// memories. This bench re-runs the suite on three hypothetical devices
// and reports how Table I winners shift:
//
//   gen2-like    — ~30-50% more bandwidth, writes scale further (the
//                  published Optane 200-series deltas);
//   cxl-like     — memory behind a CXL link: locality vanishes
//                  (uniform access from both sockets, modeled as a fat
//                  symmetric link), latency higher;
//   dram-like    — byte-addressable storage with DRAM-class bandwidth
//                  and no small-access pathologies.
#include <cstring>
#include <iostream>
#include <map>
#include <set>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/executor.hpp"
#include "workloads/suite.hpp"

namespace pmemflow {
namespace {

struct DevicePreset {
  const char* name;
  pmemsim::OptaneParams optane;
  interconnect::UpiParams upi;
};

std::vector<DevicePreset> presets() {
  std::vector<DevicePreset> out;
  out.push_back({"optane-gen1", {}, {}});

  DevicePreset gen2{"gen2-like", {}, {}};
  gen2.optane.read_peak = gbps(51.0);
  gen2.optane.write_peak = gbps(20.6);
  gen2.optane.write_scaling_threads = 6.0;
  gen2.optane.write_decline_start = 12.0;
  gen2.upi.remote_write_ceiling = gbps(12.0);
  out.push_back(gen2);

  DevicePreset cxl{"cxl-like", {}, {}};
  // Locality vanishes: the "remote" path is as wide as local access,
  // with no write collapse — but every access pays link latency.
  cxl.upi.link_bandwidth = gbps(39.4);
  cxl.upi.remote_write_ceiling = gbps(13.9);
  cxl.upi.write_contention_slope = 0.0;
  cxl.upi.write_contention_floor = 1.0;
  cxl.upi.read_contention_slope = 0.0;
  cxl.upi.remote_read_latency_ns = 80.0;
  cxl.upi.remote_write_latency_ns = 80.0;
  out.push_back(cxl);

  DevicePreset dram{"dram-like", {}, {}};
  dram.optane.read_peak = gbps(100.0);
  dram.optane.write_peak = gbps(80.0);
  dram.optane.read_scaling_threads = 8.0;
  dram.optane.write_scaling_threads = 8.0;
  dram.optane.write_decline_per_thread = 0.0;
  dram.optane.read_latency_ns = 90.0;
  dram.optane.write_latency_ns = 90.0;
  dram.optane.small_access_coeff = 0.0;
  dram.optane.small_stall_quad = 0.0;
  dram.optane.per_thread_small_read_cap = gbps(8.0);
  dram.optane.per_thread_small_write_cap = gbps(8.0);
  dram.optane.per_thread_read_cap = gbps(12.0);
  dram.optane.per_thread_write_cap = gbps(12.0);
  out.push_back(dram);
  return out;
}

}  // namespace
}  // namespace pmemflow

int main(int argc, char** argv) {
  using namespace pmemflow;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    }
  }

  std::cout << "=== Extension: suite winners on hypothetical successor "
               "devices ===\n\n";

  const auto device_presets = presets();
  TextTable table({"Workload", "gen1", "gen2-like", "cxl-like",
                   "dram-like"},
                  {Align::kLeft, Align::kLeft, Align::kLeft, Align::kLeft,
                   Align::kLeft});
  CsvWriter csv({"workload", "device", "winner", "worst_penalty"});

  std::map<std::string, double> worst_penalty;
  std::map<std::string, std::set<std::string>> winners_per_device;
  std::vector<std::vector<std::string>> rows;
  for (const auto& spec : workloads::full_suite()) {
    std::vector<std::string> row{spec.label};
    for (const auto& preset : device_presets) {
      core::Executor executor{
          workflow::Runner({}, preset.optane, preset.upi)};
      auto sweep = executor.sweep(spec);
      if (!sweep.has_value()) {
        std::cerr << "error: " << sweep.error().message << "\n";
        return 1;
      }
      const std::string winner = sweep->best().config.label();
      row.push_back(winner);
      winners_per_device[preset.name].insert(winner);
      worst_penalty[preset.name] = std::max(worst_penalty[preset.name],
                                            sweep->worst_case_penalty());
      csv.add_row({spec.label, preset.name, winner,
                   format("%.4f", sweep->worst_case_penalty())});
    }
    table.add_row(row);
  }
  table.write(std::cout);

  std::cout << "\nper-device summary:\n";
  for (const auto& preset : device_presets) {
    std::cout << format(
        "  %-12s distinct winners: %zu, worst mis-config penalty: "
        "%.0f%%\n",
        preset.name, winners_per_device[preset.name].size(),
        (worst_penalty[preset.name] - 1.0) * 100.0);
  }
  std::cout << "\nReading: configuration choice stays consequential on a "
               "gen2-like part.\nA CXL-like symmetric link collapses the "
               "placement dimension (LocW vs\nLocR become ties) and "
               "shrinks the worst-case penalty. DRAM-class\nbandwidth "
               "removes placement sensitivity entirely but *raises* the\n"
               "stakes of the mode decision: with I/O cheap, serializing "
               "components\nforfeits all overlap, so a wrong "
               "serial/parallel choice costs more\nthan it did on "
               "Optane.\n";

  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return 0;
}
