// Extension: would the recommendations survive the next device?
//
// Optane gen1 (the paper's testbed) is discontinued; the lasting
// question is whether PMEM-aware scheduling still matters on successor
// memories. This bench re-runs the suite on every backend in the
// builtin DeviceRegistry — the same presets pmemflowd's --backend flag
// resolves — and reports how Table I winners shift:
//
//   optane-gen2  — ~30-50% more bandwidth, writes scale further (the
//                  published Optane 200-series deltas);
//   cxl-like     — memory behind a CXL link: the device reports uniform
//                  locality (placement genuinely does not matter), but
//                  every access pays link latency;
//   dram-like    — byte-addressable storage with DRAM-class bandwidth,
//                  symmetric access, and no small-access pathologies.
//
// --smoke runs the acceptance gate instead of the prose report: gen1
// winners through the registry must match a default-constructed runner
// (the registry reproduces the paper baseline), the locality-free
// backends must produce *exact* S-LocW/S-LocR and P-LocW/P-LocR
// runtime ties, and at least one workload's winner must shift off gen1.
#include <array>
#include <cstring>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/executor.hpp"
#include "devices/registry.hpp"
#include "workloads/suite.hpp"

namespace pmemflow {
namespace {

struct SuiteSweep {
  std::vector<std::string> winners;  // per workload, suite order
  /// Per workload, Table I order runtimes.
  std::vector<std::array<SimDuration, 4>> runtimes;
  double worst_penalty = 1.0;
};

Expected<SuiteSweep> sweep_suite(const core::Executor& executor) {
  SuiteSweep out;
  for (const auto& spec : workloads::full_suite()) {
    auto sweep = executor.sweep(spec);
    if (!sweep.has_value()) return Unexpected{sweep.error()};
    out.winners.push_back(sweep->best().config.label());
    std::array<SimDuration, 4> row{};
    for (std::size_t i = 0; i < row.size(); ++i) {
      row[i] = sweep->results[i].run.total_ns;
    }
    out.runtimes.push_back(row);
    out.worst_penalty = std::max(out.worst_penalty,
                                 sweep->worst_case_penalty());
  }
  return out;
}

int run_smoke() {
  const auto& registry = devices::DeviceRegistry::builtin();
  const auto suite = workloads::full_suite();
  int failures = 0;
  auto check = [&failures](bool ok, const std::string& what) {
    std::cout << (ok ? "PASS" : "FAIL") << "  " << what << "\n";
    if (!ok) ++failures;
  };

  // Gate 1: the registry's gen1 preset reproduces the paper baseline (a
  // default-constructed runner) winner-for-winner.
  auto gen1_preset = registry.find("optane-gen1");
  if (!gen1_preset.has_value()) {
    std::cerr << "error: " << gen1_preset.error().message << "\n";
    return 1;
  }
  auto gen1 = sweep_suite(core::Executor{workflow::Runner(
      {}, devices::NodeDevices(gen1_preset->spec))});
  auto baseline = sweep_suite(core::Executor{workflow::Runner()});
  if (!gen1.has_value() || !baseline.has_value()) {
    std::cerr << "error: "
              << (gen1.has_value() ? baseline.error() : gen1.error()).message
              << "\n";
    return 1;
  }
  check(gen1->winners == baseline->winners &&
            gen1->runtimes == baseline->runtimes,
        "optane-gen1 via registry == default runner (winners + runtimes)");

  // Gate 2: locality-free backends tie the placement dimension exactly
  // — S-LocW == S-LocR and P-LocW == P-LocR per workload — because the
  // device itself reports uniform locality.
  for (const char* name : {"cxl-like", "dram-like"}) {
    auto preset = registry.find(name);
    if (!preset.has_value()) {
      std::cerr << "error: " << preset.error().message << "\n";
      return 1;
    }
    auto swept = sweep_suite(core::Executor{workflow::Runner(
        {}, devices::NodeDevices(preset->spec))});
    if (!swept.has_value()) {
      std::cerr << "error: " << swept.error().message << "\n";
      return 1;
    }
    bool ties = true;
    for (std::size_t w = 0; w < swept->runtimes.size(); ++w) {
      // Table I order: S-LocW, S-LocR, P-LocW, P-LocR.
      if (swept->runtimes[w][0] != swept->runtimes[w][1] ||
          swept->runtimes[w][2] != swept->runtimes[w][3]) {
        ties = false;
        std::cout << format("      %s: %s placement runtimes differ\n",
                            name, suite[w].label.c_str());
      }
    }
    check(ties, format("%s: exact S-LocW==S-LocR and P-LocW==P-LocR ties",
                       name));

    // Gate 3: the winner actually shifts somewhere — PMEM-aware
    // placement advice is device-specific, which is the point of the
    // registry.
    bool shifted = false;
    for (std::size_t w = 0; w < swept->winners.size(); ++w) {
      shifted = shifted || swept->winners[w] != gen1->winners[w];
    }
    check(shifted, format("%s: at least one Table I winner shifts off gen1",
                          name));
  }

  std::cout << (failures == 0 ? "\nsmoke: all gates passed\n"
                              : "\nsmoke: FAILED\n");
  return failures == 0 ? 0 : 1;
}

int run_report(const std::string& csv_path) {
  std::cout << "=== Extension: suite winners on registry device presets "
               "===\n\n";

  const auto& registry = devices::DeviceRegistry::builtin();
  const auto& device_presets = registry.presets();

  std::vector<std::string> headers{"Workload"};
  std::vector<Align> aligns{Align::kLeft};
  for (const auto& preset : device_presets) {
    headers.push_back(preset.name);
    aligns.push_back(Align::kLeft);
  }
  TextTable table(headers, aligns);
  CsvWriter csv({"workload", "device", "winner", "worst_penalty"});

  std::map<std::string, double> worst_penalty;
  std::map<std::string, std::set<std::string>> winners_per_device;
  for (const auto& spec : workloads::full_suite()) {
    std::vector<std::string> row{spec.label};
    for (const auto& preset : device_presets) {
      core::Executor executor{
          workflow::Runner({}, devices::NodeDevices(preset.spec))};
      auto sweep = executor.sweep(spec);
      if (!sweep.has_value()) {
        std::cerr << "error: " << sweep.error().message << "\n";
        return 1;
      }
      const std::string winner = sweep->best().config.label();
      row.push_back(winner);
      winners_per_device[preset.name].insert(winner);
      worst_penalty[preset.name] = std::max(worst_penalty[preset.name],
                                            sweep->worst_case_penalty());
      csv.add_row({spec.label, preset.name, winner,
                   format("%.4f", sweep->worst_case_penalty())});
    }
    table.add_row(row);
  }
  table.write(std::cout);

  std::cout << "\nper-device summary:\n";
  for (const auto& preset : device_presets) {
    std::cout << format(
        "  %-12s distinct winners: %zu, worst mis-config penalty: "
        "%.0f%%  (%s)\n",
        preset.name.c_str(), winners_per_device[preset.name].size(),
        (worst_penalty[preset.name] - 1.0) * 100.0, preset.summary.c_str());
  }
  std::cout << "\nReading: configuration choice stays consequential on a "
               "gen2-like part.\nA CXL-like device reports uniform locality, "
               "so the placement\ndimension collapses (LocW vs LocR become "
               "exact ties) and the\nworst-case penalty shrinks. DRAM-class "
               "bandwidth removes placement\nsensitivity entirely but "
               "*raises* the stakes of the mode decision:\nwith I/O cheap, "
               "serializing components forfeits all overlap, so a\nwrong "
               "serial/parallel choice costs more than it did on Optane.\n";

  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace pmemflow

int main(int argc, char** argv) {
  using namespace pmemflow;
  std::string csv_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  return smoke ? run_smoke() : run_report(csv_path);
}
