// Reproduces Fig 5: the 2 KB-object microbenchmark workflow. Paper:
// software overhead dominates, bandwidth is not saturated, so the
// local-read placements win - in parallel mode at 8/16 ranks (10-14%
// over serial) and serial mode at 24 ranks (11.5% over parallel,
// SVI-B/SVI-D).
#include "bench/common.hpp"

int main(int argc, char** argv) {
  pmemflow::bench::FigureSpec figure;
  figure.title = "Fig 5: Benchmark Writer + Reader with 2K objects";
  figure.family = pmemflow::workloads::Family::kMicro2KB;
  figure.panels = {
      {8, "P-LocR", "Fig 5a, 80 GB"},
      {16, "P-LocR", "Fig 5b, 160 GB"},
      {24, "S-LocR", "Fig 5c, 240 GB"},
  };
  return pmemflow::bench::run_figure(argc, argv, figure);
}
