// Model ablation: quantifies how much each contention mechanism in the
// device model contributes to the paper's headline effects, by turning
// mechanisms off one at a time and re-running two sentinel workflows:
//   - micro-64MB @ 24 (bandwidth-bound; S-LocW's win depends on the
//     shared-media constraint and remote-write collapse)
//   - micro-2KB @ 24 (overhead-bound; S-LocR's win depends on the
//     small-access thrash)
// DESIGN.md §5 calls these design choices out; this bench is their
// ablation study.
#include <cstring>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/executor.hpp"
#include "metrics/report.hpp"
#include "workloads/suite.hpp"

namespace pmemflow {
namespace {

struct Variant {
  const char* name;
  pmemsim::OptaneParams optane;
  interconnect::UpiParams upi;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"full model", {}, {}});

  Variant no_remote_collapse{"no remote-write collapse", {}, {}};
  no_remote_collapse.upi.write_contention_slope = 0.0;
  out.push_back(no_remote_collapse);

  Variant no_small_thrash{"no small-access thrash", {}, {}};
  no_small_thrash.optane.small_access_coeff = 0.0;
  out.push_back(no_small_thrash);

  Variant no_cache_thrash{"no internal-cache thrash", {}, {}};
  no_cache_thrash.optane.cache_thrash_coeff = 0.0;
  out.push_back(no_cache_thrash);

  Variant no_mixed{"no mixed-traffic interference", {}, {}};
  no_mixed.optane.mixed_interference = 0.0;
  out.push_back(no_mixed);

  Variant no_write_decline{"no write decline past 8 threads", {}, {}};
  no_write_decline.optane.write_decline_per_thread = 0.0;
  out.push_back(no_write_decline);
  return out;
}

}  // namespace
}  // namespace pmemflow

int main(int argc, char** argv) {
  using namespace pmemflow;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    }
  }

  std::cout << "=== Model ablation: contention mechanisms ===\n\n";

  const struct {
    workloads::Family family;
    std::uint32_t ranks;
    const char* paper_winner;
  } sentinels[] = {
      {workloads::Family::kMicro64MB, 24, "S-LocW"},
      {workloads::Family::kMicro2KB, 24, "S-LocR"},
  };

  CsvWriter csv({"workload", "variant", "winner", "worst_penalty"});
  for (const auto& sentinel : sentinels) {
    std::cout << to_string(sentinel.family) << " @ " << sentinel.ranks
              << " ranks (paper winner " << sentinel.paper_winner << ")\n";
    TextTable table({"Model variant", "Winner", "Worst penalty", "Note"},
                    {Align::kLeft, Align::kLeft, Align::kRight,
                     Align::kLeft});
    for (const auto& variant : variants()) {
      core::Executor executor{
          workflow::Runner({}, variant.optane, variant.upi)};
      const auto spec =
          workloads::make_workflow(sentinel.family, sentinel.ranks);
      auto sweep = executor.sweep(spec);
      if (!sweep.has_value()) {
        std::cerr << "error: " << sweep.error().message << "\n";
        return 1;
      }
      const std::string winner = sweep->best().config.label();
      table.add_row({variant.name, winner,
                     format("%.2fx", sweep->worst_case_penalty()),
                     winner == sentinel.paper_winner
                         ? ""
                         : "<- paper's winner lost"});
      csv.add_row({std::string(to_string(sentinel.family)), variant.name,
                   winner, format("%.4f", sweep->worst_case_penalty())});
    }
    table.write(std::cout);
    std::cout << "\n";
  }

  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return 0;
}
