// Reproduces Fig 9: miniAMR + MatrixMult. The compute-heavy analytics
// lets placement prioritize the I/O-heavy simulation: P-LocW at 8
// ranks (7% over P-LocR), S-LocW at 16/24 (SVI-C, Table II rows 4/8).
#include "bench/common.hpp"

int main(int argc, char** argv) {
  pmemflow::bench::FigureSpec figure;
  figure.title = "Fig 9: miniAMR + matrixmult";
  figure.family = pmemflow::workloads::Family::kMiniAmrMatrixMult;
  figure.panels = {
      {8, "P-LocW", "Fig 9a"},
      {16, "S-LocW", "Fig 9b"},
      {24, "S-LocW", "Fig 9c"},
  };
  return pmemflow::bench::run_figure(argc, argv, figure);
}
