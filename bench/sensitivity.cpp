// Extension: calibration-sensitivity study.
//
// The device model's conclusions should not hinge on razor-edge
// constants. This bench perturbs each headline knob by +/-20% and
// reports how many of the 18 suite winners change — a robustness check
// on the reproduction (small counts = conclusions are driven by the
// mechanisms, not the specific constants).
#include <cstring>
#include <iostream>
#include <vector>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/executor.hpp"
#include "devices/registry.hpp"
#include "workloads/suite.hpp"

namespace pmemflow {
namespace {

struct KnobCase {
  const char* name;
  double pmemsim::OptaneParams::* optane_member;
  double interconnect::UpiParams::* upi_member;
};

/// Calibration baseline: the registry's gen1 preset, so this study
/// perturbs exactly the constants every other consumer of the registry
/// runs with.
devices::DeviceSpec gen1_spec() {
  auto preset = devices::DeviceRegistry::builtin().find("optane-gen1");
  if (!preset.has_value()) {
    std::cerr << "error: " << preset.error().message << "\n";
    std::exit(1);
  }
  return preset->spec;
}

std::vector<std::string> suite_winners(const devices::DeviceSpec& device) {
  core::Executor executor{workflow::Runner({}, devices::NodeDevices(device))};
  std::vector<std::string> winners;
  for (const auto& spec : workloads::full_suite()) {
    auto sweep = executor.sweep(spec);
    if (!sweep.has_value()) {
      std::cerr << "error: " << sweep.error().message << "\n";
      std::exit(1);
    }
    winners.push_back(sweep->best().config.label());
  }
  return winners;
}

}  // namespace
}  // namespace pmemflow

int main(int argc, char** argv) {
  using namespace pmemflow;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    }
  }

  std::cout << "=== Extension: winner sensitivity to +/-20% knob "
               "perturbations ===\n\n";

  const KnobCase knobs[] = {
      {"mixed_interference", &pmemsim::OptaneParams::mixed_interference,
       nullptr},
      {"cache_thrash_coeff", &pmemsim::OptaneParams::cache_thrash_coeff,
       nullptr},
      {"small_access_coeff", &pmemsim::OptaneParams::small_access_coeff,
       nullptr},
      {"small_stall_quad", &pmemsim::OptaneParams::small_stall_quad,
       nullptr},
      {"write_decline_per_thread",
       &pmemsim::OptaneParams::write_decline_per_thread, nullptr},
      {"remote_write_ceiling", nullptr,
       &interconnect::UpiParams::remote_write_ceiling},
      {"write_contention_slope", nullptr,
       &interconnect::UpiParams::write_contention_slope},
      {"write_contention_floor", nullptr,
       &interconnect::UpiParams::write_contention_floor},
      {"remote_read_latency_ns", nullptr,
       &interconnect::UpiParams::remote_read_latency_ns},
  };

  const devices::DeviceSpec base_spec = gen1_spec();
  const auto baseline = suite_winners(base_spec);

  TextTable table({"Knob", "-20% flips", "+20% flips"},
                  {Align::kLeft, Align::kRight, Align::kRight});
  CsvWriter csv({"knob", "direction", "winners_changed"});
  for (const auto& knob : knobs) {
    std::string cells[2];
    int index = 0;
    for (const double factor : {0.8, 1.2}) {
      devices::DeviceSpec perturbed = base_spec;
      if (knob.optane_member != nullptr) {
        perturbed.optane.*knob.optane_member *= factor;
      } else {
        perturbed.upi.*knob.upi_member *= factor;
      }
      const auto winners = suite_winners(perturbed);
      int flips = 0;
      for (std::size_t i = 0; i < winners.size(); ++i) {
        if (winners[i] != baseline[i]) ++flips;
      }
      cells[index++] = format("%d/18", flips);
      csv.add_row({knob.name, factor < 1.0 ? "-20%" : "+20%",
                   format("%d", flips)});
    }
    table.add_row({knob.name, cells[0], cells[1]});
  }
  table.write(std::cout);
  std::cout << "\nflips = suite panels whose winning configuration changes "
               "under the perturbation.\n";

  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return 0;
}
