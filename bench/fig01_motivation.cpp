// Reproduces Fig 1 (motivation): two miniAMR workflows that differ
// only in their analytics kernel, each run under two configurations.
// The paper's point: a configuration tuned for one workflow loses
// 1.4-1.6x when the analytics kernel changes, unless scheduling and
// placement are adjusted too (§I).
#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/strings.hpp"
#include "core/executor.hpp"
#include "metrics/report.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace pmemflow;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    }
  }

  std::cout << "=== Fig 1: Performance of miniAMR workflows with "
               "different configurations ===\n\n";

  core::Executor executor;
  CsvWriter csv({"workflow", "config", "runtime_s", "normalized"});

  const workloads::Family families[] = {
      workloads::Family::kMiniAmrReadOnly,
      workloads::Family::kMiniAmrMatrixMult};
  constexpr std::uint32_t kRanks = 16;

  for (const auto family : families) {
    const auto spec = workloads::make_workflow(family, kRanks);
    auto sweep = executor.sweep(spec);
    if (!sweep.has_value()) {
      std::cerr << "error: " << sweep.error().message << "\n";
      return 1;
    }
    metrics::print_normalized(
        std::cout,
        format("%s at %u ranks (normalized to best config)",
               to_string(family), kRanks),
        *sweep);
    for (std::size_t i = 0; i < sweep->results.size(); ++i) {
      csv.add_row({std::string(to_string(family)),
                   sweep->results[i].config.label(),
                   format("%.6f", metrics::to_seconds(
                                      sweep->results[i].run.total_ns)),
                   format("%.4f", sweep->normalized(i))});
    }
    std::cout << format(
        "worst mis-configuration costs %.2fx (paper: 1.4-1.6x loss when "
        "the analytics kernel changes without re-configuring)\n\n",
        sweep->worst_case_penalty());
  }

  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return 0;
}
