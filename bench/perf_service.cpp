// Incremental-DES perf gate (ISSUE 7).
//
// Replays one large Poisson submission stream through the online
// scheduler twice — allocator memoization off, then on — and checks
// three things:
//
//   1. determinism: the completion schedules are byte-identical (same
//      fingerprint over id/node/slot/config/start/finish for every
//      record, in order);
//   2. the cache works: the memoized run avoids fixed-point solves
//      (solves_avoided > 0, hit rate > 0);
//   3. no regression: memoized events/sec is no worse than the
//      uncached baseline (with a small tolerance for wall-clock noise).
//
// Results land in the "perf_service" section of BENCH_perf.json via
// bench::BenchJson, which CI uploads as an artifact, so the events/sec
// trend is visible across commits.
//
//   perf_service [--submissions N] [--nodes N] [--classes N]
//                [--json f] [--smoke]
//
// --smoke shrinks the stream for the CI tier-1 smoke job.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "pmemsim/allocator.hpp"
#include "service/arrivals.hpp"
#include "service/scheduler.hpp"

namespace {

using namespace pmemflow;

/// FNV-1a over the schedule-defining fields of every completion, in
/// order. Two runs that place, start, or finish anything differently —
/// even by one nanosecond — disagree here.
std::uint64_t fingerprint(
    const std::vector<service::CompletionRecord>& records) {
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  for (const auto& record : records) {
    mix(record.id);
    mix(record.node);
    mix(record.slot);
    mix(static_cast<std::uint64_t>(record.config.mode));
    mix(static_cast<std::uint64_t>(record.config.placement));
    mix(record.start_ns);
    mix(record.finish_ns);
    mix(record.preemptions);
    mix(record.checkpoint_ns);
  }
  return hash;
}

struct RunOutcome {
  std::uint64_t fingerprint = 0;
  std::uint64_t completed = 0;
  std::uint64_t des_events = 0;
  double wall_seconds = 0.0;
  pmemsim::AllocatorCounters counters;

  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(des_events) / wall_seconds
               : 0.0;
  }
  [[nodiscard]] double submissions_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(completed) / wall_seconds
               : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pmemflow;

  std::uint64_t submissions = 50000;
  std::uint32_t nodes = 8;
  std::uint32_t classes = 24;
  bool smoke = false;
  std::string json_path = "BENCH_perf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--submissions") == 0 && i + 1 < argc) {
      submissions = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--classes") == 0 && i + 1 < argc) {
      classes =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (smoke) submissions = std::min<std::uint64_t>(submissions, 4000);

  service::ArrivalParams arrivals;
  arrivals.count = submissions;
  arrivals.classes = classes;
  arrivals.mean_interarrival_ns = 150.0e6;
  const auto stream = *service::make_submission_stream(arrivals);

  service::ServiceConfig config;
  config.nodes = nodes;
  config.policy = service::PlacementPolicy::kRecommenderAware;
  // Admit everything: both runs must complete the identical set of
  // submissions for the fingerprint comparison to be meaningful.
  config.queue_capacity = static_cast<std::size_t>(submissions);
  config.defer_watermark = 1.0;

  std::cout << format(
      "=== perf_service: %llu submissions, %u classes, %u nodes ===\n\n",
      static_cast<unsigned long long>(submissions), classes, nodes);

  // A fresh scheduler per run keeps the profile cache cold both times;
  // the only difference between the runs is the memoization toggle.
  auto run_once = [&](bool memoize) -> RunOutcome {
    pmemsim::set_allocator_memoization(memoize);
    pmemsim::reset_allocator_counters();
    service::OnlineScheduler scheduler(config);
    const auto wall_start = std::chrono::steady_clock::now();
    auto result = scheduler.run(stream);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (!result.has_value()) {
      std::cerr << "error: " << result.error().message << "\n";
      std::exit(1);
    }
    RunOutcome outcome;
    outcome.fingerprint = fingerprint(result->completions);
    outcome.completed = result->metrics.completed;
    outcome.des_events = result->metrics.des_events;
    outcome.wall_seconds = wall_seconds;
    outcome.counters = pmemsim::allocator_counters();
    return outcome;
  };

  const RunOutcome uncached = run_once(false);
  const RunOutcome cached = run_once(true);
  pmemsim::set_allocator_memoization(true);  // restore the default

  TextTable table({"Mode", "Completed", "DES events", "Wall", "Events/s",
                   "Solves", "Cache hits", "Hit rate"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  for (const auto& [label, run] :
       {std::pair<const char*, const RunOutcome&>{"memo off", uncached},
        std::pair<const char*, const RunOutcome&>{"memo on", cached}}) {
    table.add_row(
        {label, format("%llu", static_cast<unsigned long long>(run.completed)),
         format("%llu", static_cast<unsigned long long>(run.des_events)),
         format("%.3f s", run.wall_seconds),
         format("%.0f", run.events_per_sec()),
         format("%llu", static_cast<unsigned long long>(run.counters.solves)),
         format("%llu",
                static_cast<unsigned long long>(run.counters.cache_hits)),
         format("%.1f %%", 100.0 * run.counters.hit_rate())});
  }
  table.write(std::cout);

  // Gate 1: byte-identical schedules, memoization on vs off.
  const bool identical = uncached.fingerprint == cached.fingerprint &&
                         uncached.completed == cached.completed &&
                         uncached.des_events == cached.des_events;
  // Gate 2: the cache actually avoided fixed-point solves.
  const std::uint64_t solves_avoided =
      uncached.counters.solves > cached.counters.solves
          ? uncached.counters.solves - cached.counters.solves
          : 0;
  const bool cache_effective =
      solves_avoided > 0 && cached.counters.cache_hits > 0;
  // Gate 3: memoized throughput is no worse than uncached. The 10%
  // tolerance absorbs wall-clock noise on shared CI runners; the JSON
  // artifact keeps the raw numbers for trend tracking.
  const bool no_regression =
      cached.events_per_sec() >= 0.9 * uncached.events_per_sec();
  const bool pass = identical && cache_effective && no_regression;

  std::cout << format(
      "\nfingerprint        %016llx vs %016llx  %s\n",
      static_cast<unsigned long long>(uncached.fingerprint),
      static_cast<unsigned long long>(cached.fingerprint),
      identical ? "IDENTICAL" : "DIVERGED");
  std::cout << format(
      "solves avoided     %llu (%llu -> %llu, %.1f %% hit rate)  %s\n",
      static_cast<unsigned long long>(solves_avoided),
      static_cast<unsigned long long>(uncached.counters.solves),
      static_cast<unsigned long long>(cached.counters.solves),
      100.0 * cached.counters.hit_rate(),
      cache_effective ? "OK" : "INEFFECTIVE");
  std::cout << format(
      "events/sec         %.0f uncached -> %.0f memoized (%.2fx)  %s\n",
      uncached.events_per_sec(), cached.events_per_sec(),
      uncached.events_per_sec() > 0.0
          ? cached.events_per_sec() / uncached.events_per_sec()
          : 0.0,
      no_regression ? "OK" : "REGRESSION");
  std::cout << "\nresult: " << (pass ? "PASS" : "FAIL") << "\n";

  bench::BenchJson json(json_path);
  json.set_section(
      "perf_service",
      {{"submissions", static_cast<double>(submissions)},
       {"nodes", static_cast<double>(nodes)},
       {"classes", static_cast<double>(classes)},
       {"des_events", static_cast<double>(cached.des_events)},
       {"wall_seconds_uncached", uncached.wall_seconds},
       {"wall_seconds_memoized", cached.wall_seconds},
       {"events_per_sec_uncached", uncached.events_per_sec()},
       {"events_per_sec_memoized", cached.events_per_sec()},
       {"submissions_per_sec", cached.submissions_per_sec()},
       {"solves_uncached", static_cast<double>(uncached.counters.solves)},
       {"solves_memoized", static_cast<double>(cached.counters.solves)},
       {"solves_avoided", static_cast<double>(solves_avoided)},
       {"allocator_hit_rate", cached.counters.hit_rate()},
       {"identical", identical ? 1.0 : 0.0},
       {"pass", pass ? 1.0 : 0.0}});
  if (!json.write()) {
    std::cerr << "error: could not write " << json_path << "\n";
    return 1;
  }
  return pass ? 0 : 1;
}
