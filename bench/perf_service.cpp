// Service perf gate: allocator memoization (ISSUE 7) + sharded replay
// (ISSUE 8).
//
// Replays one large Poisson submission stream through the online
// scheduler and checks two independent properties:
//
// Memoization (unsharded), each mode best-of-3:
//   1. determinism: memoization on vs off produces byte-identical
//      completion schedules (same fingerprint over
//      id/node/slot/config/start/finish for every record, in order,
//      across every repeat);
//   2. the cache works: the memoized run avoids fixed-point solves
//      (solves_avoided > 0, hit rate > 0);
//   3. no regression: best-of-3 memoized events/sec is no worse than
//      the best-of-3 uncached baseline (small tolerance for wall-clock
//      noise).
//
// Sharded replay (regions pinned to min(4, nodes) — the *semantic*
// knob), sweeping worker threads 1/2/4 (the pure performance knob):
//   4. determinism: every thread count produces the byte-identical
//      schedule — `--shards N` must never change results;
//   5. speedup: best-of-3 events/sec at 4 workers is >= 2x the
//      1-worker baseline. Only enforced when the host actually has
//      >= 4 hardware threads (always recorded in the JSON).
//
// Results land in the "perf_service" section of BENCH_perf.json via
// bench::BenchJson, which CI uploads as an artifact, so the events/sec
// trend is visible across commits.
//
//   perf_service [--submissions N] [--nodes N] [--classes N]
//                [--shards N] [--json f] [--smoke]
//
// --smoke shrinks the stream for the CI tier-1 smoke job; --shards
// caps the worker-thread sweep (default 4).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "pmemsim/allocator.hpp"
#include "service/arrivals.hpp"
#include "service/scheduler.hpp"

namespace {

using namespace pmemflow;

/// FNV-1a over the schedule-defining fields of every completion, in
/// order. Two runs that place, start, or finish anything differently —
/// even by one nanosecond — disagree here.
std::uint64_t fingerprint(
    const std::vector<service::CompletionRecord>& records) {
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  for (const auto& record : records) {
    mix(record.id);
    mix(record.node);
    mix(record.slot);
    mix(static_cast<std::uint64_t>(record.config.mode));
    mix(static_cast<std::uint64_t>(record.config.placement));
    mix(record.start_ns);
    mix(record.finish_ns);
    mix(record.preemptions);
    mix(record.checkpoint_ns);
  }
  return hash;
}

struct RunOutcome {
  std::uint64_t fingerprint = 0;
  std::uint64_t completed = 0;
  std::uint64_t des_events = 0;
  std::uint64_t shard_migrations = 0;
  double wall_seconds = 0.0;
  pmemsim::AllocatorCounters counters;

  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(des_events) / wall_seconds
               : 0.0;
  }
  [[nodiscard]] double submissions_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(completed) / wall_seconds
               : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pmemflow;

  std::uint64_t submissions = 50000;
  std::uint32_t nodes = 8;
  std::uint32_t classes = 24;
  std::uint32_t max_shards = 4;
  bool smoke = false;
  std::string json_path = "BENCH_perf.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--submissions") == 0 && i + 1 < argc) {
      submissions = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--classes") == 0 && i + 1 < argc) {
      classes =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      max_shards =
          static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (smoke) submissions = std::min<std::uint64_t>(submissions, 4000);
  max_shards = std::max<std::uint32_t>(1, max_shards);
  constexpr int kRepeats = 3;  // best-of-3 absorbs scheduler jitter

  service::ArrivalParams arrivals;
  arrivals.count = submissions;
  arrivals.classes = classes;
  arrivals.mean_interarrival_ns = 150.0e6;
  const auto stream = *service::make_submission_stream(arrivals);

  service::ServiceConfig base_config;
  base_config.nodes = nodes;
  base_config.policy = service::PlacementPolicy::kRecommenderAware;
  // Admit everything: all runs must complete the identical set of
  // submissions for the fingerprint comparison to be meaningful.
  base_config.queue_capacity = static_cast<std::size_t>(submissions);
  base_config.defer_watermark = 1.0;

  const unsigned hardware_threads = std::thread::hardware_concurrency();
  std::cout << format(
      "=== perf_service: %llu submissions, %u classes, %u nodes, "
      "%u hw threads ===\n\n",
      static_cast<unsigned long long>(submissions), classes, nodes,
      hardware_threads);

  // A fresh scheduler per run keeps the profile cache cold every time;
  // the runs differ only in the toggle under test. Counters come from
  // the run's own metrics (per-allocator state — no process globals).
  auto run_once = [&](bool memoize, std::uint32_t regions,
                      std::uint32_t threads) -> RunOutcome {
    service::ServiceConfig config = base_config;
    config.allocator_memoization = memoize;
    config.sharding.regions = regions;
    config.sharding.threads = threads;
    service::OnlineScheduler scheduler(config);
    const auto wall_start = std::chrono::steady_clock::now();
    auto result = scheduler.run(stream);
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    if (!result.has_value()) {
      std::cerr << "error: " << result.error().message << "\n";
      std::exit(1);
    }
    RunOutcome outcome;
    outcome.fingerprint = fingerprint(result->completions);
    outcome.completed = result->metrics.completed;
    outcome.des_events = result->metrics.des_events;
    outcome.shard_migrations = result->metrics.shard_migrations;
    outcome.wall_seconds = wall_seconds;
    outcome.counters = result->metrics.allocator;
    return outcome;
  };

  // Best wall clock of kRepeats, with every repeat's fingerprint
  // checked against the first: repeats are free determinism trials.
  bool repeats_identical = true;
  auto best_of = [&](bool memoize, std::uint32_t regions,
                     std::uint32_t threads) -> RunOutcome {
    RunOutcome best = run_once(memoize, regions, threads);
    for (int r = 1; r < kRepeats; ++r) {
      RunOutcome repeat = run_once(memoize, regions, threads);
      if (repeat.fingerprint != best.fingerprint ||
          repeat.des_events != best.des_events) {
        repeats_identical = false;
      }
      if (repeat.wall_seconds < best.wall_seconds) best = repeat;
    }
    return best;
  };

  // ---- Memoization gate (unsharded) ----
  const RunOutcome uncached = best_of(false, 1, 0);
  const RunOutcome cached = best_of(true, 1, 0);

  TextTable table({"Mode", "Completed", "DES events", "Wall", "Events/s",
                   "Solves", "Cache hits", "Hit rate"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  for (const auto& [label, run] :
       {std::pair<const char*, const RunOutcome&>{"memo off", uncached},
        std::pair<const char*, const RunOutcome&>{"memo on", cached}}) {
    table.add_row(
        {label, format("%llu", static_cast<unsigned long long>(run.completed)),
         format("%llu", static_cast<unsigned long long>(run.des_events)),
         format("%.3f s", run.wall_seconds),
         format("%.0f", run.events_per_sec()),
         format("%llu", static_cast<unsigned long long>(run.counters.solves)),
         format("%llu",
                static_cast<unsigned long long>(run.counters.cache_hits)),
         format("%.1f %%", 100.0 * run.counters.hit_rate())});
  }
  table.write(std::cout);

  // Gate 1: byte-identical schedules, memoization on vs off (and across
  // every best-of repeat).
  const bool identical = uncached.fingerprint == cached.fingerprint &&
                         uncached.completed == cached.completed &&
                         uncached.des_events == cached.des_events &&
                         repeats_identical;
  // Gate 2: the cache actually avoided fixed-point solves.
  const std::uint64_t solves_avoided =
      uncached.counters.solves > cached.counters.solves
          ? uncached.counters.solves - cached.counters.solves
          : 0;
  const bool cache_effective =
      solves_avoided > 0 && cached.counters.cache_hits > 0;
  // Gate 3: memoized throughput is no worse than uncached, best-of-3
  // each. The 10% tolerance absorbs wall-clock noise on shared CI
  // runners; the JSON artifact keeps the raw numbers for trends.
  const bool no_regression =
      cached.events_per_sec() >= 0.9 * uncached.events_per_sec();

  std::cout << format(
      "\nfingerprint        %016llx vs %016llx  %s\n",
      static_cast<unsigned long long>(uncached.fingerprint),
      static_cast<unsigned long long>(cached.fingerprint),
      identical ? "IDENTICAL" : "DIVERGED");
  std::cout << format(
      "solves avoided     %llu (%llu -> %llu, %.1f %% hit rate)  %s\n",
      static_cast<unsigned long long>(solves_avoided),
      static_cast<unsigned long long>(uncached.counters.solves),
      static_cast<unsigned long long>(cached.counters.solves),
      100.0 * cached.counters.hit_rate(),
      cache_effective ? "OK" : "INEFFECTIVE");
  std::cout << format(
      "events/sec         %.0f uncached -> %.0f memoized (%.2fx)  %s\n",
      uncached.events_per_sec(), cached.events_per_sec(),
      uncached.events_per_sec() > 0.0
          ? cached.events_per_sec() / uncached.events_per_sec()
          : 0.0,
      no_regression ? "OK" : "REGRESSION");

  // ---- Sharded-replay gate ----
  // Regions are pinned (semantic knob: a 4-region schedule legitimately
  // differs from the 1-region one above); only the worker-thread count
  // varies, and it must not move a single byte.
  const std::uint32_t regions = std::min<std::uint32_t>(4, nodes);
  std::vector<std::uint32_t> thread_counts;
  for (std::uint32_t t : {1u, 2u, 4u}) {
    if (t <= max_shards) thread_counts.push_back(t);
  }
  std::vector<RunOutcome> sharded;
  sharded.reserve(thread_counts.size());
  for (std::uint32_t t : thread_counts) {
    sharded.push_back(best_of(true, regions, t));
  }

  TextTable shard_table({"Workers", "Completed", "DES events", "Migrations",
                         "Wall", "Events/s", "Fingerprint"},
                        {Align::kRight, Align::kRight, Align::kRight,
                         Align::kRight, Align::kRight, Align::kRight,
                         Align::kLeft});
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    const RunOutcome& run = sharded[i];
    shard_table.add_row(
        {format("%u", thread_counts[i]),
         format("%llu", static_cast<unsigned long long>(run.completed)),
         format("%llu", static_cast<unsigned long long>(run.des_events)),
         format("%llu",
                static_cast<unsigned long long>(run.shard_migrations)),
         format("%.3f s", run.wall_seconds),
         format("%.0f", run.events_per_sec()),
         format("%016llx", static_cast<unsigned long long>(run.fingerprint))});
  }
  std::cout << format("\n--- sharded replay: %u regions ---\n", regions);
  shard_table.write(std::cout);

  // Gate 4: the worker-thread count is a pure performance knob.
  bool identical_sharded = repeats_identical;
  for (const RunOutcome& run : sharded) {
    identical_sharded =
        identical_sharded && run.fingerprint == sharded.front().fingerprint &&
        run.completed == sharded.front().completed &&
        run.des_events == sharded.front().des_events &&
        run.shard_migrations == sharded.front().shard_migrations;
  }
  // Gate 5: >= 2x events/sec at 4 workers vs 1 — only meaningful (and
  // only enforced) when the host has >= 4 hardware threads and the
  // sweep actually reached 4 workers.
  double speedup = 1.0;
  if (sharded.size() > 1 && sharded.front().events_per_sec() > 0.0) {
    speedup = sharded.back().events_per_sec() /
              sharded.front().events_per_sec();
  }
  const bool speedup_enforced =
      hardware_threads >= 4 && !thread_counts.empty() &&
      thread_counts.back() >= 4;
  const bool fast_enough = !speedup_enforced || speedup >= 2.0;

  std::cout << format(
      "sharded identity   %s across %zu worker counts\n",
      identical_sharded ? "IDENTICAL" : "DIVERGED", sharded.size());
  std::cout << format(
      "sharded speedup    %.2fx (workers %u -> %u)  %s\n", speedup,
      thread_counts.front(), thread_counts.back(),
      speedup_enforced ? (fast_enough ? "OK" : "TOO SLOW")
                       : "not enforced (needs >= 4 hw threads)");

  const bool pass = identical && cache_effective && no_regression &&
                    identical_sharded && fast_enough;
  std::cout << "\nresult: " << (pass ? "PASS" : "FAIL") << "\n";

  bench::BenchJson json(json_path);
  std::vector<std::pair<std::string, double>> section{
      {"submissions", static_cast<double>(submissions)},
      {"nodes", static_cast<double>(nodes)},
      {"classes", static_cast<double>(classes)},
      {"des_events", static_cast<double>(cached.des_events)},
      {"wall_seconds_uncached", uncached.wall_seconds},
      {"wall_seconds_memoized", cached.wall_seconds},
      {"events_per_sec_uncached", uncached.events_per_sec()},
      {"events_per_sec_memoized", cached.events_per_sec()},
      {"submissions_per_sec", cached.submissions_per_sec()},
      {"solves_uncached", static_cast<double>(uncached.counters.solves)},
      {"solves_memoized", static_cast<double>(cached.counters.solves)},
      {"solves_avoided", static_cast<double>(solves_avoided)},
      {"allocator_hit_rate", cached.counters.hit_rate()},
      {"identical", identical ? 1.0 : 0.0},
      {"regions", static_cast<double>(regions)},
      {"hardware_threads", static_cast<double>(hardware_threads)},
      {"identical_sharded", identical_sharded ? 1.0 : 0.0},
      {"speedup_shards", speedup},
      {"shard_migrations",
       sharded.empty() ? 0.0
                       : static_cast<double>(sharded.front().shard_migrations)},
      {"pass", pass ? 1.0 : 0.0}};
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    section.emplace_back(format("events_per_sec_shards%u", thread_counts[i]),
                         sharded[i].events_per_sec());
  }
  json.set_section("perf_service", section);
  if (!json.write()) {
    std::cerr << "error: could not write " << json_path << "\n";
    return 1;
  }
  return pass ? 0 : 1;
}
