// Reproduces Fig 4: the 64 MB-object microbenchmark workflow at
// 8/16/24 ranks (80/160/240 GB total). Paper: serial local-write
// (S-LocW) is best at every concurrency; at 16-24 ranks it is up to
// ~2.5x better than the remote-write configurations (SVI-A).
#include "bench/common.hpp"

int main(int argc, char** argv) {
  pmemflow::bench::FigureSpec figure;
  figure.title = "Fig 4: Benchmark Writer + Reader with 64MB objects";
  figure.family = pmemflow::workloads::Family::kMicro64MB;
  figure.panels = {
      {8, "S-LocW", "Fig 4a, 80 GB"},
      {16, "S-LocW", "Fig 4b, 160 GB"},
      {24, "S-LocW", "Fig 4c, 240 GB"},
  };
  return pmemflow::bench::run_figure(argc, argv, figure);
}
