// Checkpoint-preemption bench (service-subsystem acceptance gate).
//
// Drives a mixed urgent/batch Poisson stream through the online
// scheduler twice under identical least-loaded placement — once
// run-to-completion (the no-preemption baseline) and once with
// checkpoint-restore preemption — and gates on three properties:
//
//   1. urgent P99 queueing delay improves under preemption (the whole
//      point: urgent work no longer waits behind whole batch runtimes);
//   2. total makespan regresses by less than the modeled checkpoint +
//      restore overhead actually charged (preemption moves work around
//      and pays the snapshot I/O, it must not lose work);
//   3. two runs of the preemption-enabled stream produce byte-identical
//      completion records (the DES determinism contract survives
//      cancellable finish events and drain timers).
//
//   service_preemption [--submissions N] [--nodes N] [--smoke] [--csv f]
//
// --smoke shrinks the stream for CI tier-1.
#include <cstring>
#include <iostream>
#include <vector>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "metrics/summary.hpp"
#include "service/arrivals.hpp"
#include "service/scheduler.hpp"

namespace {

using namespace pmemflow;

/// Queueing-delay summary of one priority class.
metrics::SummaryStats delay_of(
    const std::vector<service::CompletionRecord>& records,
    service::Priority priority) {
  std::vector<double> delays;
  for (const auto& record : records) {
    if (record.priority == priority) {
      delays.push_back(static_cast<double>(record.queue_delay_ns()));
    }
  }
  return metrics::summarize(delays);
}

bool identical_records(const service::CompletionRecord& a,
                       const service::CompletionRecord& b) {
  return a.id == b.id && a.label == b.label && a.priority == b.priority &&
         a.node == b.node && a.config == b.config &&
         a.cache_hit == b.cache_hit && a.arrival_ns == b.arrival_ns &&
         a.start_ns == b.start_ns && a.finish_ns == b.finish_ns &&
         a.best_runtime_ns == b.best_runtime_ns &&
         a.config_runtime_ns == b.config_runtime_ns &&
         a.preemptions == b.preemptions && a.migrations == b.migrations &&
         a.checkpoint_ns == b.checkpoint_ns && a.restore_ns == b.restore_ns &&
         a.work_executed_ns == b.work_executed_ns;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t submissions = 20000;
  std::uint32_t nodes = 4;
  bool smoke = false;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--submissions") == 0 && i + 1 < argc) {
      submissions = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (smoke) submissions = std::min<std::uint64_t>(submissions, 2000);

  service::ArrivalParams arrivals;
  arrivals.count = submissions;
  arrivals.classes = 16;
  // Saturating mix: batch workflows hold nodes for whole runtimes, so
  // without preemption an urgent arrival routinely waits behind one.
  arrivals.mean_interarrival_ns = 120.0e6;
  arrivals.urgent_fraction = 0.15;
  arrivals.batch_fraction = 0.45;
  const auto stream = *service::make_submission_stream(arrivals);

  std::cout << format(
      "=== Preemption: %llu submissions, %u classes, %u nodes ===\n\n",
      static_cast<unsigned long long>(arrivals.count), arrivals.classes,
      nodes);

  service::ServiceConfig config;
  config.nodes = nodes;
  config.queue_capacity = static_cast<std::size_t>(submissions);
  config.defer_watermark = 1.0;  // identical completion sets
  config.policy = service::PlacementPolicy::kLeastLoaded;

  struct Outcome {
    const char* label;
    service::ServiceMetrics metrics;
    metrics::SummaryStats urgent_delay;
    std::vector<service::CompletionRecord> completions;
  };
  std::vector<Outcome> outcomes;

  CsvWriter csv(service::service_csv_header());
  for (const auto preemption : {service::PreemptionPolicy::kNone,
                                service::PreemptionPolicy::kCheckpointRestore}) {
    config.preemption = preemption;
    service::OnlineScheduler scheduler(config);
    auto result = scheduler.run(stream);
    if (!result.has_value()) {
      std::cerr << "error: " << result.error().message << "\n";
      return 1;
    }
    Outcome outcome;
    outcome.label = to_string(preemption);
    outcome.urgent_delay = delay_of(result->completions,
                                    service::Priority::kUrgent);
    outcome.metrics = result->metrics;
    outcome.completions = std::move(result->completions);
    append_service_csv_row(csv, outcome.label, outcome.metrics);
    outcomes.push_back(std::move(outcome));
  }
  const auto& baseline = outcomes[0];
  const auto& preempt = outcomes[1];

  TextTable table({"Mode", "Urgent p99 delay", "Urgent mean delay", "Makespan",
                   "Preempts", "Migrations", "Ckpt+restore", "Victim p99"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  for (const auto& outcome : outcomes) {
    const auto& m = outcome.metrics;
    table.add_row(
        {outcome.label, format("%.2f ms", outcome.urgent_delay.p99 / 1e6),
         format("%.2f ms", outcome.urgent_delay.mean / 1e6),
         format("%.3f s", static_cast<double>(m.makespan_ns) / 1e9),
         format("%llu", static_cast<unsigned long long>(m.preemptions)),
         format("%llu", static_cast<unsigned long long>(m.migrations)),
         format("%.1f ms",
                static_cast<double>(m.checkpoint_overhead_ns +
                                    m.restore_overhead_ns) /
                    1e6),
         format("%.3fx", m.victim_slowdown.p99)});
  }
  table.write(std::cout);

  // Gate 1: urgent p99 queueing delay must improve.
  const bool urgent_improves =
      preempt.urgent_delay.p99 < baseline.urgent_delay.p99;
  std::cout << format("\nurgent p99 delay  %.2f ms -> %.2f ms  %s\n",
                      baseline.urgent_delay.p99 / 1e6,
                      preempt.urgent_delay.p99 / 1e6,
                      urgent_improves ? "WIN" : "LOSS");

  // Gate 2: makespan may regress, but only within the checkpoint +
  // restore overhead actually charged — preemption must not lose work.
  const SimDuration overhead_bound = preempt.metrics.checkpoint_overhead_ns +
                                     preempt.metrics.restore_overhead_ns;
  const bool makespan_bounded =
      preempt.metrics.makespan_ns <=
      baseline.metrics.makespan_ns + overhead_bound;
  std::cout << format(
      "makespan          %.3f s -> %.3f s (overhead bound %.1f ms)  %s\n",
      static_cast<double>(baseline.metrics.makespan_ns) / 1e9,
      static_cast<double>(preempt.metrics.makespan_ns) / 1e9,
      static_cast<double>(overhead_bound) / 1e6,
      makespan_bounded ? "OK" : "EXCEEDED");

  // Gate 3: determinism — the preemption run replayed must be
  // byte-identical, record by record.
  config.preemption = service::PreemptionPolicy::kCheckpointRestore;
  service::OnlineScheduler replay(config);
  auto second = replay.run(stream);
  if (!second.has_value()) {
    std::cerr << "error: " << second.error().message << "\n";
    return 1;
  }
  bool deterministic = second->completions.size() == preempt.completions.size();
  for (std::size_t i = 0; deterministic && i < second->completions.size();
       ++i) {
    deterministic = identical_records(second->completions[i],
                                      preempt.completions[i]);
  }
  std::cout << format("determinism       %llu records replayed  %s\n",
                      static_cast<unsigned long long>(
                          preempt.completions.size()),
                      deterministic ? "IDENTICAL" : "DIVERGED");

  const bool preempted_at_all = preempt.metrics.preemptions > 0;
  if (!preempted_at_all) {
    std::cout << "\nresult: stream never triggered preemption (gate "
                 "vacuous)\n";
    return 1;
  }
  const bool pass = urgent_improves && makespan_bounded && deterministic;
  std::cout << "\nresult: "
            << (pass ? "preemption improves urgent latency within the "
                       "checkpoint overhead bound"
                     : "preemption gate FAILED")
            << "\n";

  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return pass ? 0 : 1;
}
