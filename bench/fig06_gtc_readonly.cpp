// Reproduces Fig 6: GTC + Read-Only. Paper: the compute-heavy
// simulation leaves PMEM unconstrained at low/medium concurrency
// (P-LocR at 8 ranks, S-LocR at 16), but at 24 ranks remote writes
// begin to dominate and S-LocW wins by ~6% (SVI-A/B/D).
#include "bench/common.hpp"

int main(int argc, char** argv) {
  pmemflow::bench::FigureSpec figure;
  figure.title = "Fig 6: GTC + Read only";
  figure.family = pmemflow::workloads::Family::kGtcReadOnly;
  figure.panels = {
      {8, "P-LocR", "Fig 6a"},
      {16, "S-LocR", "Fig 6b"},
      {24, "S-LocW", "Fig 6c"},
  };
  return pmemflow::bench::run_figure(argc, argv, figure);
}
