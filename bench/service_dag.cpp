// DAG-subsystem acceptance gate (service-subsystem extension).
//
// Enforces the three contracts the general-DAG work is built on:
//
//   1. Fusion wins — on a fan-out-heavy mix, kDagFusion co-locates
//      producer→consumer stages (ephemeral edges > 0) and beats plain
//      least-loaded placement on makespan, because fused edges stream
//      socket-locally instead of paying the interconnect.
//   2. Pair ≡ 2-node DAG — a writer+reader pair submitted as a
//      two-component chain DAG schedules identically to the same class
//      submitted through the classic pair path (same nodes, same
//      starts, same finishes), under kLeastLoaded.
//   3. Sharded determinism — the same DAG-bearing stream replayed with
//      1, 2, and 4 worker threads over 4 fleet regions produces
//      byte-identical completion records.
//
// Appends a "service_dag" section to BENCH_service.json (shared with
// the other service benches) for the CI artifact.
//
//   service_dag [--smoke] [--csv out.csv] [--json f]
#include <cmath>
#include <cstring>
#include <iostream>
#include <memory>

#include "bench_json.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "dag/spec.hpp"
#include "service/arrivals.hpp"
#include "service/scheduler.hpp"

namespace {

using namespace pmemflow;

struct Gate {
  const char* name;
  bool pass;
  std::string detail;
};

/// One simulation stage feeding two analytics consumers: the fan-out
/// shape where co-placement pays (transfer-dominated edges).
dag::DagSpec make_fanout_dag(std::uint32_t iterations) {
  dag::DagSpec spec;
  spec.label = "fanout-analytics";
  spec.iterations = iterations;
  dag::DagComponent sim;
  sim.name = "sim";
  sim.ranks = 8;
  sim.object_size = 16 * kMiB;
  sim.objects_per_rank = 16;
  sim.compute_ns = 20e6;
  dag::DagComponent stats;
  stats.name = "stats";
  stats.ranks = 8;
  stats.object_size = 1 * kMiB;
  stats.objects_per_rank = 4;
  stats.analytics_ns_per_object = 30000.0;
  dag::DagComponent viz = stats;
  viz.name = "viz";
  viz.analytics_ns_per_object = 20000.0;
  spec.components = {sim, stats, viz};
  spec.edges = {dag::DagEdge{"sim", "stats", {}, 4},
                dag::DagEdge{"sim", "viz", {}, 4}};
  return spec;
}

/// A two-component chain: exactly a writer+reader pair.
dag::DagSpec make_chain_dag(std::uint32_t iterations) {
  dag::DagSpec spec;
  spec.label = "pair-as-dag";
  spec.iterations = iterations;
  dag::DagComponent writer;
  writer.name = "writer";
  writer.ranks = 8;
  writer.object_size = 8 * kMiB;
  writer.objects_per_rank = 8;
  writer.compute_ns = 50e6;
  dag::DagComponent reader;
  reader.name = "reader";
  reader.ranks = 8;
  reader.analytics_ns_per_object = 25000.0;
  spec.components = {writer, reader};
  spec.edges = {dag::DagEdge{"writer", "reader", {}, 0}};
  return spec;
}

/// A pair-class stream where every other submission is replaced by a
/// fan-out DAG, deterministically.
std::vector<service::Submission> make_mixed_stream(
    std::uint64_t count, std::shared_ptr<const dag::DagSpec> dag_class) {
  service::ArrivalParams arrivals;
  arrivals.count = count;
  arrivals.classes = 6;
  arrivals.mean_interarrival_ns = 120.0e6;
  auto stream = *service::make_submission_stream(arrivals);
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (i % 2 != 0) continue;
    stream[i].dag = dag_class;
    stream[i].spec = workflow::WorkflowSpec{};
  }
  return stream;
}

bool identical_schedules(const std::vector<service::CompletionRecord>& a,
                         const std::vector<service::CompletionRecord>& b,
                         std::string* detail) {
  if (a.size() != b.size()) {
    *detail = format("%zu vs %zu completions", a.size(), b.size());
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.id != y.id || x.node != y.node || x.slot != y.slot ||
        x.arrival_ns != y.arrival_ns || x.start_ns != y.start_ns ||
        x.finish_ns != y.finish_ns) {
      *detail = format(
          "completion %zu differs: id %llu node %u [%llu, %llu] vs id "
          "%llu node %u [%llu, %llu]",
          i, static_cast<unsigned long long>(x.id), x.node,
          static_cast<unsigned long long>(x.start_ns),
          static_cast<unsigned long long>(x.finish_ns),
          static_cast<unsigned long long>(y.id), y.node,
          static_cast<unsigned long long>(y.start_ns),
          static_cast<unsigned long long>(y.finish_ns));
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string csv_path;
  std::string json_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const std::uint64_t count = smoke ? 60 : 400;
  const auto fanout = std::make_shared<const dag::DagSpec>(
      make_fanout_dag(smoke ? 6 : 10));
  const auto mixed = make_mixed_stream(count, fanout);

  std::cout << format("=== DAG gate: %zu submissions (every 2nd a "
                      "fan-out DAG)%s ===\n\n",
                      mixed.size(), smoke ? " (smoke)" : "");

  std::vector<Gate> gates;
  double fusion_makespan_s = 0.0, baseline_makespan_s = 0.0;
  std::uint64_t ephemeral_edges = 0, dag_completed = 0;

  // Gate 1: kDagFusion beats least-loaded on the fan-out mix, with
  // fused (ephemeral) edges in the metrics.
  {
    bool pass = true;
    std::string detail;
    service::ServiceConfig config;
    config.nodes = 4;
    config.queue_capacity = mixed.size();
    config.defer_watermark = 1.0;

    service::ServiceMetrics by_policy[2];
    const service::PlacementPolicy policies[2] = {
        service::PlacementPolicy::kLeastLoaded,
        service::PlacementPolicy::kDagFusion};
    for (int p = 0; pass && p < 2; ++p) {
      config.policy = policies[p];
      service::OnlineScheduler scheduler(config);
      auto result = scheduler.run(mixed);
      if (!result.has_value()) {
        pass = false;
        detail = result.error().message;
        break;
      }
      by_policy[p] = result->metrics;
    }
    if (pass) {
      const auto& base = by_policy[0];
      const auto& fused = by_policy[1];
      baseline_makespan_s = static_cast<double>(base.makespan_ns) / 1e9;
      fusion_makespan_s = static_cast<double>(fused.makespan_ns) / 1e9;
      ephemeral_edges = fused.ephemeral_edges;
      dag_completed = fused.dag_completed;
      if (fused.dag_completed == 0) {
        pass = false;
        detail = "no DAG submissions completed";
      } else if (fused.ephemeral_edges == 0) {
        pass = false;
        detail = "kDagFusion fused no edges";
      } else if (base.ephemeral_edges != 0) {
        pass = false;
        detail = "least-loaded spread placement fused edges";
      } else if (fused.makespan_ns >= base.makespan_ns) {
        pass = false;
        detail = format("fusion makespan %.3f s !< least-loaded %.3f s",
                        fusion_makespan_s, baseline_makespan_s);
      } else {
        detail = format(
            "%llu DAGs, %llu fused edges, makespan %.3f s vs %.3f s "
            "(%.1f%% faster)",
            static_cast<unsigned long long>(fused.dag_completed),
            static_cast<unsigned long long>(fused.ephemeral_edges),
            fusion_makespan_s, baseline_makespan_s,
            100.0 * (1.0 - fusion_makespan_s / baseline_makespan_s));
      }
    }
    gates.push_back({"fusion-beats-least-loaded", pass, detail});
  }

  // Gate 2: a pair class submitted as a two-component chain DAG
  // schedules identically to the classic pair path.
  bool pair_identical = false;
  {
    bool pass = true;
    std::string detail;
    const auto chain = std::make_shared<const dag::DagSpec>(
        make_chain_dag(smoke ? 4 : 8));
    auto pair = dag::to_pair_workflow(*chain);
    if (!pair.has_value()) {
      pass = false;
      detail = pair.error().message;
    } else {
      const std::uint64_t n = smoke ? 12 : 48;
      std::vector<service::Submission> as_pairs, as_dags;
      for (std::uint64_t i = 0; i < n; ++i) {
        service::Submission s;
        s.id = i;
        s.arrival_ns = i * 150 * kMillisecond;
        s.spec = *pair;
        as_pairs.push_back(s);
        s.spec = workflow::WorkflowSpec{};
        s.dag = chain;
        as_dags.push_back(std::move(s));
      }

      service::ServiceConfig config;
      config.nodes = 3;
      config.queue_capacity = n;
      config.defer_watermark = 1.0;
      config.policy = service::PlacementPolicy::kLeastLoaded;

      service::OnlineScheduler pair_scheduler(config);
      auto pair_run = pair_scheduler.run(as_pairs);
      service::OnlineScheduler dag_scheduler(config);
      auto dag_run = dag_scheduler.run(as_dags);
      if (!pair_run.has_value()) {
        pass = false;
        detail = pair_run.error().message;
      } else if (!dag_run.has_value()) {
        pass = false;
        detail = dag_run.error().message;
      } else {
        pass = identical_schedules(pair_run->completions,
                                   dag_run->completions, &detail);
        if (pass) {
          detail = format(
              "%zu completions, runtime %.3f s each, identical nodes "
              "and times",
              pair_run->completions.size(),
              static_cast<double>(
                  pair_run->completions.front().runtime_ns()) /
                  1e9);
        }
      }
    }
    pair_identical = pass;
    gates.push_back({"pair-equals-2-node-dag", pass, detail});
  }

  // Gate 3: the DAG-bearing stream replays byte-identically across
  // 1/2/4 worker threads (4 epoch-synchronized regions).
  bool sharded_identical = false;
  {
    bool pass = true;
    std::string detail;
    std::vector<std::vector<service::CompletionRecord>> runs;
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
      service::ServiceConfig config;
      config.nodes = 4;
      config.queue_capacity = mixed.size();
      config.defer_watermark = 1.0;
      config.policy = service::PlacementPolicy::kDagFusion;
      config.sharding.regions = 4;
      config.sharding.threads = threads;
      service::OnlineScheduler scheduler(config);
      auto result = scheduler.run(mixed);
      if (!result.has_value()) {
        pass = false;
        detail = result.error().message;
        break;
      }
      runs.push_back(std::move(result->completions));
    }
    for (std::size_t r = 1; pass && r < runs.size(); ++r) {
      if (!identical_schedules(runs[0], runs[r], &detail)) {
        pass = false;
        detail = format("%u threads: %s", r == 1 ? 2u : 4u,
                        detail.c_str());
      }
    }
    if (pass) {
      detail = format("%zu completions identical across 1/2/4 threads",
                      runs[0].size());
    }
    sharded_identical = pass;
    gates.push_back({"sharded-replay-identical", pass, detail});
  }

  bool all_pass = true;
  for (const auto& gate : gates) {
    std::cout << format("%-26s %s  %s\n", gate.name,
                        gate.pass ? "PASS" : "FAIL", gate.detail.c_str());
    all_pass = all_pass && gate.pass;
  }
  std::cout << "\nresult: "
            << (all_pass ? "DAG subsystem gates hold" : "DAG gate FAILED")
            << "\n";

  bench::BenchJson json(json_path);
  json.set_section(
      "service_dag",
      {{"submissions", static_cast<double>(mixed.size())},
       {"dag_completed", static_cast<double>(dag_completed)},
       {"ephemeral_edges", static_cast<double>(ephemeral_edges)},
       {"fusion_makespan_s", fusion_makespan_s},
       {"least_loaded_makespan_s", baseline_makespan_s},
       {"fusion_speedup",
        fusion_makespan_s > 0.0 ? baseline_makespan_s / fusion_makespan_s
                                : 0.0},
       {"pair_dag_identical", pair_identical ? 1.0 : 0.0},
       {"sharded_identical", sharded_identical ? 1.0 : 0.0}});
  if (!json.write()) {
    std::cerr << "error: could not write " << json_path << "\n";
    return 1;
  }

  if (!csv_path.empty()) {
    CsvWriter csv({"gate", "pass", "detail"});
    for (const auto& gate : gates) {
      csv.add_row({gate.name, gate.pass ? "1" : "0", gate.detail});
    }
    if (!csv.write_file(csv_path)) {
      std::cerr << "error: could not write " << csv_path << "\n";
      return 1;
    }
  }
  return all_pass ? 0 : 1;
}
