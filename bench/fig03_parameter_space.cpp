// Reproduces Fig 3: the workflow parameter space. For each of the nine
// application-kernel workflows (plus the microbenchmarks), prints the
// measured simulation/analytics I/O indexes, object-size class, and
// concurrency class — the axes of the paper's radar chart (§IV-C).
#include <cstring>
#include <iostream>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/characterizer.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace pmemflow;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    }
  }

  std::cout << "=== Fig 3: Workflow parameter space ===\n"
            << "I/O index = I/O time / iteration time, standalone,\n"
            << "serial, node-local PMEM (paper SIV-C definition)\n\n";

  core::Characterizer characterizer;
  TextTable table({"Workflow", "Sim I/O idx", "Ana I/O idx", "Object size",
                   "Objects/iter", "Concurrency"},
                  {Align::kLeft, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kLeft});
  CsvWriter csv({"workflow", "ranks", "sim_io_index", "ana_io_index",
                 "object_size_bytes", "objects_per_iteration",
                 "concurrency_class"});

  for (const auto& spec : workloads::full_suite()) {
    auto profile = characterizer.profile(spec);
    if (!profile.has_value()) {
      std::cerr << "error: " << profile.error().message << "\n";
      return 1;
    }
    table.add_row({
        spec.label,
        format("%.2f", profile->simulation.io_index()),
        format("%.2f", profile->analytics.io_index()),
        format_bytes(profile->simulation.object_size),
        format("%llu", static_cast<unsigned long long>(
                           profile->simulation.objects_per_iteration)),
        core::to_string(profile->features.concurrency),
    });
    csv.add_row({spec.label, format("%u", spec.ranks),
                 format("%.4f", profile->simulation.io_index()),
                 format("%.4f", profile->analytics.io_index()),
                 format("%llu", static_cast<unsigned long long>(
                                    profile->simulation.object_size)),
                 format("%llu", static_cast<unsigned long long>(
                                    profile->simulation
                                        .objects_per_iteration)),
                 core::to_string(profile->features.concurrency)});
  }
  table.write(std::cout);
  std::cout << "\nNote: no single axis determines the best configuration "
               "(paper SIV-C);\nsee table2_recommendations for the full "
               "feature -> config mapping.\n";

  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return 0;
}
