// Reproduces Fig 8: miniAMR + Read-Only. Many small (4.5 KB) objects
// from an I/O-heavy simulation: P-LocR at 8 ranks, S-LocR at 16
// (6% over P-LocR), and at 24 ranks remote writes saturate so S-LocW
// wins by ~25% over S-LocR (SVI-A/B/D).
#include "bench/common.hpp"

int main(int argc, char** argv) {
  pmemflow::bench::FigureSpec figure;
  figure.title = "Fig 8: miniAMR + Read only";
  figure.family = pmemflow::workloads::Family::kMiniAmrReadOnly;
  figure.panels = {
      {8, "P-LocR", "Fig 8a"},
      {16, "S-LocR", "Fig 8b"},
      {24, "S-LocW", "Fig 8c"},
  };
  return pmemflow::bench::run_figure(argc, argv, figure);
}
