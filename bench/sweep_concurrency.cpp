// Extension: fine-grained concurrency sweep.
//
// The paper samples each workflow at 8/16/24 ranks; its Table II
// therefore bins concurrency as low/medium/high. This bench sweeps
// every even rank count from 2 to 28 for each workflow family and
// reports where the winning configuration actually flips — the
// crossover points a production scheduler would want to know, and a
// direct answer to "how sensitive are the recommendations to the
// concurrency bins?".
#include <cstring>
#include <iostream>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/executor.hpp"
#include "metrics/report.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace pmemflow;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    }
  }

  std::cout << "=== Extension: winner vs concurrency (2-28 ranks) ===\n\n";

  core::Executor executor;
  CsvWriter csv({"workload", "ranks", "winner", "best_s", "worst_penalty"});
  TextTable table({"Workload", "Winner by rank count (2,4,...,28)",
                   "Crossovers"},
                  {Align::kLeft, Align::kLeft, Align::kLeft});

  for (const auto family : workloads::all_families()) {
    std::string winners_row;
    std::string crossovers;
    std::string previous;
    for (std::uint32_t ranks = 2; ranks <= 28; ranks += 2) {
      const auto spec = workloads::make_workflow(family, ranks);
      auto sweep = executor.sweep(spec);
      if (!sweep.has_value()) {
        std::cerr << "error: " << sweep.error().message << "\n";
        return 1;
      }
      const std::string winner = sweep->best().config.label();
      if (!winners_row.empty()) winners_row += " ";
      // Compact cell: S-LocW -> SW, P-LocR -> PR, ...
      winners_row += winner.substr(0, 1) + winner.substr(5, 1);
      if (!previous.empty() && winner != previous) {
        crossovers += format("%s->%s@%u ", previous.c_str(),
                             winner.c_str(), ranks);
      }
      previous = winner;
      csv.add_row({std::string(to_string(family)), format("%u", ranks),
                   winner,
                   format("%.6f",
                          metrics::to_seconds(sweep->best().run.total_ns)),
                   format("%.4f", sweep->worst_case_penalty())});
    }
    table.add_row({to_string(family), winners_row,
                   crossovers.empty() ? "none" : crossovers});
  }
  table.write(std::cout);
  std::cout << "\n(SW=S-LocW SR=S-LocR PW=P-LocW PR=P-LocR; the paper's "
               "8/16/24 samples are columns 4, 8 and 12)\n";

  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return 0;
}
