// Reproduces Table II: configuration recommendations for workflows.
//
// For every workflow in the 18-workflow suite: characterize it
// (features = Table II's columns), obtain the rule-based (Table II)
// and model-based recommendations, and compare both against the
// empirical best from an exhaustive sweep — including each strategy's
// regret. This is the validation the paper's conclusions ask future
// schedulers to perform.
#include <cstring>
#include <iostream>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/autotuner.hpp"
#include "metrics/report.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace pmemflow;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    }
  }

  std::cout << "=== Table II: Configuration recommendations for "
               "workflows ===\n\n";

  core::AutoTuner tuner;
  TextTable table(
      {"Workflow", "SimCmp", "SimWr", "AnaCmp", "AnaRd", "Obj", "Conc",
       "Best", "Rule", "rgt", "Model", "rgt"},
      {Align::kLeft, Align::kLeft, Align::kLeft, Align::kLeft, Align::kLeft,
       Align::kLeft, Align::kLeft, Align::kLeft, Align::kLeft, Align::kRight,
       Align::kLeft, Align::kRight});
  CsvWriter csv({"workflow", "ranks", "sim_compute", "sim_write",
                 "ana_compute", "ana_read", "object_class", "concurrency",
                 "best_config", "rule_config", "rule_regret",
                 "model_config", "model_regret"});

  double worst_rule_regret = 1.0;
  double worst_model_regret = 1.0;
  int rule_optimal = 0;
  int model_optimal = 0;
  int total = 0;

  for (const auto& spec : workloads::full_suite()) {
    auto report = tuner.tune(spec);
    if (!report.has_value()) {
      std::cerr << "error: " << report.error().message << "\n";
      return 1;
    }
    const auto& f = report->profile.features;
    const char* object_class = f.small_objects ? "small" : "large";
    table.add_row({
        spec.label,
        core::to_string(f.sim_compute),
        core::to_string(f.sim_write),
        core::to_string(f.analytics_compute),
        core::to_string(f.analytics_read),
        object_class,
        core::to_string(f.concurrency),
        report->best.label(),
        report->rule_based.config.label(),
        format("%.2f", report->rule_based_regret),
        report->model_based.config.label(),
        format("%.2f", report->model_based_regret),
    });
    csv.add_row({spec.label, format("%u", spec.ranks),
                 core::to_string(f.sim_compute),
                 core::to_string(f.sim_write),
                 core::to_string(f.analytics_compute),
                 core::to_string(f.analytics_read), object_class,
                 core::to_string(f.concurrency), report->best.label(),
                 report->rule_based.config.label(),
                 format("%.4f", report->rule_based_regret),
                 report->model_based.config.label(),
                 format("%.4f", report->model_based_regret)});
    worst_rule_regret = std::max(worst_rule_regret,
                                 report->rule_based_regret);
    worst_model_regret = std::max(worst_model_regret,
                                  report->model_based_regret);
    if (report->rule_based.config == report->best) ++rule_optimal;
    if (report->model_based.config == report->best) ++model_optimal;
    ++total;
  }

  table.write(std::cout);
  std::cout << format(
      "\nrule-based (Table II): optimal on %d/%d workflows, worst regret "
      "%.2fx\n",
      rule_optimal, total, worst_rule_regret);
  std::cout << format(
      "model-based scheduler: optimal on %d/%d workflows, worst regret "
      "%.2fx\n",
      model_optimal, total, worst_model_regret);
  std::cout << "(regret = runtime of recommended config / runtime of "
               "empirical best)\n";

  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return 0;
}
