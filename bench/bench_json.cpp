#include "bench_json.hpp"

#include <cstddef>
#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace pmemflow::bench {
namespace {

void skip_whitespace(const std::string& text, std::size_t& at) {
  while (at < text.size() &&
         (text[at] == ' ' || text[at] == '\t' || text[at] == '\n' ||
          text[at] == '\r')) {
    ++at;
  }
}

/// Parses a quoted JSON string starting at `at` (which must point to
/// the opening quote); returns false on malformed input.
bool parse_string(const std::string& text, std::size_t& at,
                  std::string& out) {
  if (at >= text.size() || text[at] != '"') return false;
  ++at;
  out.clear();
  while (at < text.size() && text[at] != '"') {
    if (text[at] == '\\' && at + 1 < text.size()) {
      // Keep escapes raw: the backslash AND the escaped character are
      // stored verbatim, so a read -> rewrite cycle reproduces the
      // original bytes (dropping the backslash used to corrupt section
      // names containing \" or \\ on rewrite).
      out.push_back(text[at]);
      ++at;
    }
    out.push_back(text[at]);
    ++at;
  }
  if (at >= text.size()) return false;
  ++at;  // closing quote
  return true;
}

/// Captures one balanced JSON value (object, array, string, or
/// scalar) verbatim; returns false on malformed input.
bool capture_value(const std::string& text, std::size_t& at,
                   std::string& out) {
  skip_whitespace(text, at);
  const std::size_t start = at;
  int depth = 0;
  bool in_string = false;
  while (at < text.size()) {
    const char c = text[at];
    if (in_string) {
      if (c == '\\') ++at;
      else if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (depth == 0) break;  // closing brace of the enclosing object
      --depth;
      if (depth == 0 && (text[start] == '{' || text[start] == '[')) {
        ++at;
        break;
      }
    } else if ((c == ',') && depth == 0) {
      break;  // scalar value ended
    }
    ++at;
  }
  if (depth != 0 || in_string) return false;
  out = text.substr(start, at - start);
  // Trim trailing whitespace captured before the delimiter.
  while (!out.empty() && (out.back() == ' ' || out.back() == '\n' ||
                          out.back() == '\r' || out.back() == '\t')) {
    out.pop_back();
  }
  return !out.empty();
}

}  // namespace

BenchJson::BenchJson(std::string path) : path_(std::move(path)) {
  std::ifstream in(path_);
  if (!in.is_open()) return;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::size_t at = 0;
  skip_whitespace(text, at);
  if (at >= text.size() || text[at] != '{') return;
  ++at;
  while (true) {
    skip_whitespace(text, at);
    if (at < text.size() && text[at] == ',') {
      ++at;
      skip_whitespace(text, at);
    }
    if (at >= text.size() || text[at] == '}') break;
    std::string name, value;
    if (!parse_string(text, at, name)) {
      sections_.clear();  // malformed: start over empty
      return;
    }
    skip_whitespace(text, at);
    if (at >= text.size() || text[at] != ':') {
      sections_.clear();
      return;
    }
    ++at;
    if (!capture_value(text, at, value)) {
      sections_.clear();
      return;
    }
    sections_.emplace_back(std::move(name), std::move(value));
  }
}

void BenchJson::set_section(
    const std::string& section,
    const std::vector<std::pair<std::string, double>>& values) {
  std::string rendered = "{";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) rendered += ", ";
    rendered += format("\"%s\": %.10g", values[i].first.c_str(),
                       values[i].second);
  }
  rendered += "}";
  for (auto& [name, value] : sections_) {
    if (name == section) {
      value = std::move(rendered);
      return;
    }
  }
  sections_.emplace_back(section, std::move(rendered));
}

bool BenchJson::write() const {
  std::ofstream out(path_, std::ios::trunc);
  if (!out.is_open()) return false;
  out << "{\n";
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    out << "  \"" << sections_[i].first << "\": " << sections_[i].second;
    if (i + 1 < sections_.size()) out << ",";
    out << "\n";
  }
  out << "}\n";
  return out.good();
}

}  // namespace pmemflow::bench
