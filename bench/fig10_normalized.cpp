// Reproduces Fig 10: workflow runtime normalized to the fastest
// configuration, for the four application workflows (GTC/miniAMR x
// Read-Only/MatrixMult) at every concurrency. Also computes the
// paper's headline numbers: no single optimal configuration, and
// mis-configuration costing up to ~70 % (§VII).
#include <algorithm>
#include <cstring>
#include <iostream>
#include <set>

#include "common/strings.hpp"
#include "core/executor.hpp"
#include "metrics/report.hpp"
#include "workloads/suite.hpp"

int main(int argc, char** argv) {
  using namespace pmemflow;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    }
  }

  std::cout << "=== Fig 10: Workflow runtime normalized to the fastest "
               "configuration ===\n\n";

  const struct {
    workloads::Family family;
    const char* panel;
  } panels[] = {
      {workloads::Family::kGtcReadOnly, "Fig 10a: GTC + Read-Only"},
      {workloads::Family::kGtcMatrixMult, "Fig 10b: GTC + MatrixMult"},
      {workloads::Family::kMiniAmrReadOnly, "Fig 10c: miniAMR + Read-Only"},
      {workloads::Family::kMiniAmrMatrixMult,
       "Fig 10d: miniAMR + MatrixMult"},
  };

  core::Executor executor;
  CsvWriter csv(metrics::sweep_csv_header());
  std::set<std::string> winners;
  double worst_penalty = 1.0;

  for (const auto& panel : panels) {
    std::cout << panel.panel << "\n";
    for (std::uint32_t ranks : workloads::kConcurrencyLevels) {
      const auto spec = workloads::make_workflow(panel.family, ranks);
      auto sweep = executor.sweep(spec);
      if (!sweep.has_value()) {
        std::cerr << "error: " << sweep.error().message << "\n";
        return 1;
      }
      metrics::print_normalized(std::cout, format("  %u ranks", ranks),
                                *sweep);
      metrics::append_sweep_rows(csv, std::string(to_string(panel.family)),
                                 ranks, *sweep);
      winners.insert(sweep->best().config.label());
      worst_penalty = std::max(worst_penalty, sweep->worst_case_penalty());
    }
  }

  std::cout << format(
      "distinct winning configurations across panels: %zu (paper: no "
      "single optimal configuration)\n",
      winners.size());
  std::cout << format(
      "worst mis-configuration penalty: %.0f%% slowdown (paper: up to "
      "~70%%)\n",
      (worst_penalty - 1.0) * 100.0);

  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return 0;
}
