// Trace-subsystem acceptance gate (service-subsystem extension).
//
// Enforces the three contracts the trace subsystem is built on:
//
//   1. Exact round trip — recording a submission stream and replaying
//      the recorded trace reproduces the stream bit-for-bit (ids,
//      arrivals, priorities, labels, class fingerprints), and the
//      serialization is canonical (serialize∘parse∘serialize is
//      byte-identical).
//   2. Deterministic replay — loading the same trace file twice and
//      running the online scheduler on each replay produces identical
//      completion counts, makespans, and delay distributions.
//   3. Statistical twin — fitting a recorded trace and generating a
//      synthetic stream from the fitted params reproduces the arrival
//      rate and class-mix entropy within 5% and the priority mix
//      within 5 points.
//
//   service_trace [--smoke] [--csv out.csv]
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "service/arrivals.hpp"
#include "service/scheduler.hpp"
#include "traces/fit.hpp"
#include "traces/replay.hpp"
#include "traces/schema.hpp"

namespace {

using namespace pmemflow;

struct Gate {
  const char* name;
  bool pass;
  std::string detail;
};

bool within_rel(double actual, double expected, double tolerance) {
  return std::abs(actual - expected) <= tolerance * std::abs(expected);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    }
  }

  service::ArrivalParams arrivals;
  arrivals.count = smoke ? 2000 : 20000;
  arrivals.classes = 8;
  arrivals.mean_interarrival_ns = 40.0e6;
  const auto stream = *service::make_submission_stream(arrivals);
  const auto pool =
      service::make_class_pool(arrivals.classes, arrivals.seed);

  std::cout << format(
      "=== Trace gate: %zu submissions, %u classes%s ===\n\n",
      stream.size(), arrivals.classes, smoke ? " (smoke)" : "");

  std::vector<Gate> gates;

  // Gate 1: exact round trip through the schema and the replayer.
  {
    const auto trace = traces::record_trace(stream, pool);
    const auto text = traces::serialize_trace(trace);
    auto parsed = traces::parse_trace(text);
    bool pass = parsed.has_value();
    std::string detail;
    if (!pass) {
      detail = parsed.error().message;
    } else if (traces::serialize_trace(*parsed) != text) {
      pass = false;
      detail = "serialize∘parse∘serialize changed the bytes";
    } else {
      auto replayed = traces::TraceReplayer{pool}.replay(*parsed);
      if (!replayed.has_value()) {
        pass = false;
        detail = replayed.error().message;
      } else if (replayed->size() != stream.size()) {
        pass = false;
        detail = format("replayed %zu of %zu submissions",
                        replayed->size(), stream.size());
      } else {
        for (std::size_t i = 0; pass && i < stream.size(); ++i) {
          const auto& a = stream[i];
          const auto& b = (*replayed)[i];
          if (a.id != b.id || a.arrival_ns != b.arrival_ns ||
              a.priority != b.priority || a.spec.label != b.spec.label ||
              workflow::class_fingerprint(a.spec) !=
                  workflow::class_fingerprint(b.spec)) {
            pass = false;
            detail = format("submission %zu differs after round trip", i);
          }
        }
        if (pass) {
          detail = format("%zu submissions, %zu trace bytes, canonical",
                          stream.size(), text.size());
        }
      }
    }
    gates.push_back({"round-trip", pass, detail});
  }

  // Gate 2: byte-identical replay across file loads drives an
  // identical schedule.
  {
    const std::string path = "service_trace_gate_tmp.csv";
    bool pass = true;
    std::string detail;
    auto written =
        traces::write_trace(traces::record_trace(stream, pool), path);
    if (!written.has_value()) {
      pass = false;
      detail = written.error().message;
    } else {
      service::ServiceConfig config;
      config.nodes = 4;
      config.queue_capacity = stream.size();
      config.defer_watermark = 1.0;
      config.policy = service::PlacementPolicy::kRecommenderAware;

      std::vector<service::ServiceMetrics> runs;
      for (int round = 0; pass && round < 2; ++round) {
        auto loaded = traces::load_trace(path);
        if (!loaded.has_value()) {
          pass = false;
          detail = loaded.error().message;
          break;
        }
        auto replayed = traces::TraceReplayer{pool}.replay(*loaded);
        if (!replayed.has_value()) {
          pass = false;
          detail = replayed.error().message;
          break;
        }
        service::OnlineScheduler scheduler(config);
        auto result = scheduler.run(*replayed);
        if (!result.has_value()) {
          pass = false;
          detail = result.error().message;
          break;
        }
        runs.push_back(result->metrics);
      }
      if (pass) {
        const auto& a = runs[0];
        const auto& b = runs[1];
        if (a.completed != b.completed || a.makespan_ns != b.makespan_ns ||
            a.queue_delay_ns.mean != b.queue_delay_ns.mean ||
            a.queue_delay_ns.p99 != b.queue_delay_ns.p99) {
          pass = false;
          detail = "two loads of the same file scheduled differently";
        } else {
          detail = format(
              "%llu completions, makespan %.3f s, identical twice",
              static_cast<unsigned long long>(a.completed),
              static_cast<double>(a.makespan_ns) / 1e9);
        }
      }
    }
    std::remove(path.c_str());
    gates.push_back({"deterministic-replay", pass, detail});
  }

  // Gate 3: fit → generate → fit converges within 5%.
  double rate_error = 0.0, entropy_error = 0.0;
  {
    bool pass = true;
    std::string detail;
    auto fit1 = traces::fit_arrival_params(
        traces::record_trace(stream, pool));
    if (!fit1.has_value()) {
      pass = false;
      detail = fit1.error().message;
    } else {
      auto params = fit1->params;
      params.seed = arrivals.seed + 1;  // an independent sample
      auto twin = service::make_submission_stream(params);
      if (!twin.has_value()) {
        pass = false;
        detail = twin.error().message;
      } else {
        const auto twin_pool =
            service::make_class_pool(params.classes, params.seed);
        auto fit2 = traces::fit_arrival_params(
            traces::record_trace(*twin, twin_pool));
        if (!fit2.has_value()) {
          pass = false;
          detail = fit2.error().message;
        } else {
          rate_error = std::abs(fit2->arrival_rate_per_s -
                                fit1->arrival_rate_per_s) /
                       fit1->arrival_rate_per_s;
          entropy_error = std::abs(fit2->class_mix_entropy_bits -
                                   fit1->class_mix_entropy_bits) /
                          fit1->class_mix_entropy_bits;
          const bool rate_ok =
              within_rel(fit2->arrival_rate_per_s,
                         fit1->arrival_rate_per_s, 0.05);
          const bool mix_ok =
              std::abs(fit2->params.urgent_fraction -
                       fit1->params.urgent_fraction) <= 0.05 &&
              std::abs(fit2->params.batch_fraction -
                       fit1->params.batch_fraction) <= 0.05;
          const bool entropy_ok = entropy_error <= 0.05;
          const bool classes_ok =
              fit2->params.classes == fit1->params.classes;
          pass = rate_ok && mix_ok && entropy_ok && classes_ok;
          detail = format(
              "rate %.2f vs %.2f /s (%.1f%%), entropy %.3f vs %.3f bits "
              "(%.1f%%), urgent %.3f vs %.3f, batch %.3f vs %.3f",
              fit2->arrival_rate_per_s, fit1->arrival_rate_per_s,
              100.0 * rate_error, fit2->class_mix_entropy_bits,
              fit1->class_mix_entropy_bits, 100.0 * entropy_error,
              fit2->params.urgent_fraction, fit1->params.urgent_fraction,
              fit2->params.batch_fraction, fit1->params.batch_fraction);
        }
      }
    }
    gates.push_back({"fit-generate-fit", pass, detail});
  }

  bool all_pass = true;
  for (const auto& gate : gates) {
    std::cout << format("%-22s %s  %s\n", gate.name,
                        gate.pass ? "PASS" : "FAIL", gate.detail.c_str());
    all_pass = all_pass && gate.pass;
  }
  std::cout << "\nresult: "
            << (all_pass ? "trace subsystem round-trips exactly"
                         : "trace gate FAILED")
            << "\n";

  if (!csv_path.empty()) {
    CsvWriter csv({"gate", "pass", "detail"});
    for (const auto& gate : gates) {
      csv.add_row({gate.name, gate.pass ? "1" : "0", gate.detail});
    }
    if (!csv.write_file(csv_path)) {
      std::cerr << "error: could not write " << csv_path << "\n";
      return 1;
    }
  }
  return all_pass ? 0 : 1;
}
