// Co-location bench (service-subsystem acceptance gate).
//
// Builds two synthetic workflow classes straddling the paper's §IV-C
// I/O-index axis — one write-heavy (bulk simulation output, read-only
// analytics) and one read-heavy (compute-only simulation, heavy
// analytics reads) — and drives an alternating stream through a small
// fleet. Gates:
//
//   1. on the mixed stream, kColocationAware packs (colocations > 0)
//      and beats kLeastLoaded's one-workflow-per-node makespan: two
//      nodes running four compatible tenants finish sooner even after
//      paying the measured interference slowdown;
//   2. on a write-heavy-only stream the policy never packs — two
//      same-direction tenants would fight over device write bandwidth,
//      so every placement waits for an empty node instead;
//   3. two runs of the mixed colocation stream produce byte-identical
//      completion records (the DES determinism contract survives
//      re-schedulable finish events and interference re-timing).
//
//   service_colocation [--submissions N] [--nodes N] [--smoke] [--csv f]
//
// --smoke shrinks the stream for CI tier-1.
#include <cstring>
#include <iostream>
#include <vector>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "service/arrivals.hpp"
#include "service/scheduler.hpp"
#include "workloads/synthetic.hpp"

namespace {

using namespace pmemflow;

/// Write-heavy class: bulk per-iteration simulation output, analytics
/// that barely computes — the simulation (writer) I/O index dominates.
workflow::WorkflowSpec write_heavy_class() {
  workloads::SyntheticSimulation::Params sim;
  sim.object_size = 8 * kMiB;
  sim.objects_per_rank = 6;
  sim.compute_ns = 0.0;
  sim.name = "wh-sim";
  workloads::SyntheticAnalytics::Params analytics;
  analytics.compute_ns_per_object = 1.0e6;
  analytics.name = "wh-ana";
  auto spec = workloads::make_synthetic_workflow(sim, analytics, /*ranks=*/8,
                                                 /*iterations=*/2);
  spec.label = "write-heavy";
  return spec;
}

/// Read-heavy class: the simulation mostly computes, the analytics
/// streams every object back with no compute — the analytics (reader)
/// I/O index dominates.
workflow::WorkflowSpec read_heavy_class() {
  workloads::SyntheticSimulation::Params sim;
  sim.object_size = 8 * kMiB;
  sim.objects_per_rank = 6;
  sim.compute_ns = 2.5e7;
  sim.name = "rh-sim";
  workloads::SyntheticAnalytics::Params analytics;
  analytics.compute_ns_per_object = 0.0;
  analytics.name = "rh-ana";
  auto spec = workloads::make_synthetic_workflow(sim, analytics, /*ranks=*/8,
                                                 /*iterations=*/2);
  spec.label = "read-heavy";
  return spec;
}

/// Fixed-gap stream over the given classes, round-robin, all kNormal.
std::vector<service::Submission> make_stream(
    const std::vector<workflow::WorkflowSpec>& classes,
    std::uint64_t count, SimDuration gap_ns) {
  std::vector<service::Submission> stream;
  stream.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    service::Submission submission;
    submission.id = i;
    submission.spec = classes[i % classes.size()];
    submission.arrival_ns = static_cast<SimTime>(i) * gap_ns;
    submission.priority = service::Priority::kNormal;
    stream.push_back(std::move(submission));
  }
  return stream;
}

bool identical_records(const service::CompletionRecord& a,
                       const service::CompletionRecord& b) {
  return a.id == b.id && a.label == b.label && a.priority == b.priority &&
         a.node == b.node && a.slot == b.slot && a.config == b.config &&
         a.cache_hit == b.cache_hit && a.arrival_ns == b.arrival_ns &&
         a.start_ns == b.start_ns && a.finish_ns == b.finish_ns &&
         a.best_runtime_ns == b.best_runtime_ns &&
         a.config_runtime_ns == b.config_runtime_ns &&
         a.preemptions == b.preemptions && a.migrations == b.migrations &&
         a.checkpoint_ns == b.checkpoint_ns && a.restore_ns == b.restore_ns &&
         a.work_executed_ns == b.work_executed_ns &&
         a.colocations == b.colocations;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t submissions = 400;
  std::uint32_t nodes = 2;
  bool smoke = false;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--submissions") == 0 && i + 1 < argc) {
      submissions = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (smoke) submissions = std::min<std::uint64_t>(submissions, 80);

  // Arrivals outpace the fleet's one-per-node capacity, so makespan is
  // capacity-bound and the doubled tenancy is what gates it.
  const SimDuration gap_ns = 10 * kMillisecond;
  const auto mixed =
      make_stream({write_heavy_class(), read_heavy_class()}, submissions,
                  gap_ns);
  const auto write_only =
      make_stream({write_heavy_class()}, submissions, gap_ns);

  std::cout << format(
      "=== Co-location: %llu submissions (alternating WH/RH), %u nodes "
      "===\n\n",
      static_cast<unsigned long long>(submissions), nodes);

  service::ServiceConfig config;
  config.nodes = nodes;
  config.queue_capacity = static_cast<std::size_t>(submissions);
  config.defer_watermark = 1.0;  // identical completion sets across runs

  struct Outcome {
    std::string label;
    service::ServiceMetrics metrics;
    std::vector<service::CompletionRecord> completions;
  };
  auto run = [&config](const char* label,
                       const std::vector<service::Submission>& stream,
                       service::PlacementPolicy policy)
      -> Expected<Outcome> {
    config.policy = policy;
    service::OnlineScheduler scheduler(config);
    auto result = scheduler.run(stream);
    if (!result.has_value()) return Unexpected{result.error()};
    Outcome outcome;
    outcome.label = label;
    outcome.metrics = std::move(result->metrics);
    outcome.completions = std::move(result->completions);
    return outcome;
  };

  auto baseline = run("least-loaded (mixed)", mixed,
                      service::PlacementPolicy::kLeastLoaded);
  auto packed = run("colocation (mixed)", mixed,
                    service::PlacementPolicy::kColocationAware);
  auto write_heavy = run("colocation (write-heavy only)", write_only,
                         service::PlacementPolicy::kColocationAware);
  for (const auto* outcome :
       {&baseline, &packed, &write_heavy}) {
    if (!outcome->has_value()) {
      std::cerr << "error: " << outcome->error().message << "\n";
      return 1;
    }
  }

  CsvWriter csv(service::service_csv_header());
  TextTable table({"Run", "Makespan", "Mean delay", "Colocations",
                   "Interference", "Util"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight});
  for (const auto* outcome : {&baseline, &packed, &write_heavy}) {
    const auto& m = (*outcome)->metrics;
    table.add_row(
        {(*outcome)->label,
         format("%.3f s", static_cast<double>(m.makespan_ns) / 1e9),
         format("%.2f ms", m.queue_delay_ns.mean / 1e6),
         format("%llu", static_cast<unsigned long long>(m.colocations)),
         format("%.1f ms",
                static_cast<double>(m.interference_overhead_ns) / 1e6),
         format("%.1f %%", 100.0 * m.mean_utilization)});
    append_service_csv_row(csv, (*outcome)->label, m);
  }
  table.write(std::cout);

  // Gate 1: the mixed stream must actually pack, and packing must beat
  // one-workflow-per-node makespan despite the interference charge.
  const bool packs = packed->metrics.colocations > 0;
  const bool makespan_wins =
      packed->metrics.makespan_ns < baseline->metrics.makespan_ns;
  std::cout << format(
      "\nmakespan          %.3f s -> %.3f s (%llu colocations)  %s\n",
      static_cast<double>(baseline->metrics.makespan_ns) / 1e9,
      static_cast<double>(packed->metrics.makespan_ns) / 1e9,
      static_cast<unsigned long long>(packed->metrics.colocations),
      packs && makespan_wins ? "WIN" : "LOSS");

  // Gate 2: same-direction tenants never share a node.
  const bool never_packs_writes = write_heavy->metrics.colocations == 0;
  std::cout << format(
      "write-heavy only  %llu colocations  %s\n",
      static_cast<unsigned long long>(write_heavy->metrics.colocations),
      never_packs_writes ? "OK (never packs)" : "PACKED (forbidden)");

  // Gate 3: determinism — replay the mixed colocation run and compare
  // record by record.
  auto replay = run("colocation (replay)", mixed,
                    service::PlacementPolicy::kColocationAware);
  if (!replay.has_value()) {
    std::cerr << "error: " << replay.error().message << "\n";
    return 1;
  }
  bool deterministic =
      replay->completions.size() == packed->completions.size();
  for (std::size_t i = 0; deterministic && i < replay->completions.size();
       ++i) {
    deterministic =
        identical_records(replay->completions[i], packed->completions[i]);
  }
  std::cout << format("determinism       %llu records replayed  %s\n",
                      static_cast<unsigned long long>(
                          packed->completions.size()),
                      deterministic ? "IDENTICAL" : "DIVERGED");

  const bool pass =
      packs && makespan_wins && never_packs_writes && deterministic;
  std::cout << "\nresult: "
            << (pass ? "co-location packs compatible pairs and wins makespan"
                     : "co-location gate FAILED")
            << "\n";

  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return pass ? 0 : 1;
}
