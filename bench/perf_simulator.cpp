// Performance microbenchmarks of the simulator itself (google-benchmark):
// event-queue throughput, coroutine scheduling, the fixed-point
// bandwidth allocator, storage-stack functional paths, and a full
// workflow sweep. These guard the "simulation is cheap enough to
// auto-tune exhaustively" property the core scheduler relies on.
#include <benchmark/benchmark.h>

#include "core/executor.hpp"
#include "devices/optane_device.hpp"
#include "pmemsim/allocator.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "stack/nvstream.hpp"
#include "workloads/suite.hpp"

namespace pmemflow {
namespace {

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < 1000; ++i) {
      queue.schedule(static_cast<SimTime>((i * 7919) % 1000), [] {});
    }
    while (!queue.empty()) {
      queue.pop().second();
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_CoroutineSleepLoop(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (int t = 0; t < tasks; ++t) {
      auto worker = [&engine]() -> sim::Task {
        for (int i = 0; i < 100; ++i) {
          co_await sim::sleep_for(engine, 10);
        }
      };
      engine.spawn(worker());
    }
    engine.run_to_completion();
  }
  state.SetItemsProcessed(state.iterations() * tasks * 100);
}
BENCHMARK(BM_CoroutineSleepLoop)->Arg(1)->Arg(16)->Arg(64);

void BM_AllocatorFixedPoint(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  pmemsim::OptaneRateAllocator allocator(
      pmemsim::BandwidthModel({}, interconnect::UpiModel{}));
  std::vector<sim::Flow> storage(static_cast<std::size_t>(flows));
  std::vector<sim::Flow*> pointers;
  for (int i = 0; i < flows; ++i) {
    auto& flow = storage[static_cast<std::size_t>(i)];
    flow.spec.kind = (i % 2 == 0) ? sim::IoKind::kWrite : sim::IoKind::kRead;
    flow.spec.locality =
        (i % 3 == 0) ? sim::Locality::kRemote : sim::Locality::kLocal;
    flow.spec.op_size = (i % 5 == 0) ? 2 * kKB : 64 * kMB;
    flow.spec.total_bytes = flow.spec.op_size;
    flow.spec.sw_ns_per_op = 500.0 * (i % 4);
    flow.remaining_bytes = static_cast<double>(flow.spec.total_bytes);
    pointers.push_back(&flow);
  }
  for (auto _ : state) {
    allocator.allocate(pointers);
    benchmark::DoNotOptimize(storage.front().progress_rate);
  }
}
BENCHMARK(BM_AllocatorFixedPoint)->Arg(8)->Arg(16)->Arg(48);

void BM_NvStreamWriteReadCycle(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    devices::OptaneDevice device(engine, 0, 1 * kGiB);
    stack::NvStreamChannel channel(device, "bench", 1);
    auto worker = [&]() -> sim::Task {
      std::vector<stack::ObjectData> objects;
      for (int i = 0; i < 16; ++i) {
        objects.push_back({static_cast<std::uint64_t>(i),
                           stack::Payload::real(stack::Payload::generate_bytes(
                               static_cast<std::uint64_t>(i), 4096))});
      }
      co_await channel.write_part(0, 1, 0, std::move(objects), 0.0);
      channel.commit_version(1);
      stack::SnapshotPart out;
      co_await channel.read_part(0, 1, 0, out, 0.0);
    };
    engine.spawn(worker());
    engine.run_to_completion();
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_NvStreamWriteReadCycle);

void BM_FullConfigSweep(benchmark::State& state) {
  core::Executor executor;
  const auto spec = workloads::make_workflow(
      workloads::Family::kMiniAmrReadOnly,
      static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto sweep = executor.sweep(spec);
    benchmark::DoNotOptimize(sweep->best_index());
  }
}
BENCHMARK(BM_FullConfigSweep)->Arg(8)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pmemflow

BENCHMARK_MAIN();
