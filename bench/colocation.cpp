// Extension: multi-tenant PMEM contention.
//
// The paper studies one workflow per node (§II-A) and leaves
// multi-workflow scheduling to future systems. This bench co-locates
// two suite workflows on the node and measures the slowdown each
// tenant suffers versus running alone, across channel-placement
// choices — the first question a multi-tenant PMEM scheduler must
// answer (do tenants' channels share a socket or split?).
#include <cstring>
#include <iostream>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "metrics/report.hpp"
#include "workflow/runner.hpp"
#include "workloads/suite.hpp"

namespace pmemflow {
namespace {

workflow::RunOptions deploy(topo::SocketId channel) {
  workflow::RunOptions options;
  options.serial = false;
  options.writer_socket = 0;
  options.reader_socket = 1;
  options.channel_socket = channel;
  return options;
}

}  // namespace
}  // namespace pmemflow

int main(int argc, char** argv) {
  using namespace pmemflow;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    }
  }

  std::cout << "=== Extension: co-located workflows sharing node PMEM "
               "===\n\n";

  workflow::Runner runner;
  TextTable table({"Tenant A", "Tenant B", "Channels", "A slowdown",
                   "B slowdown"},
                  {Align::kLeft, Align::kLeft, Align::kLeft, Align::kRight,
                   Align::kRight});
  CsvWriter csv({"tenant_a", "tenant_b", "channel_layout", "a_slowdown",
                 "b_slowdown"});

  const struct {
    workloads::Family a;
    workloads::Family b;
  } pairs[] = {
      {workloads::Family::kMicro64MB, workloads::Family::kMicro64MB},
      {workloads::Family::kMicro64MB, workloads::Family::kGtcReadOnly},
      {workloads::Family::kMiniAmrReadOnly,
       workloads::Family::kMiniAmrMatrixMult},
      {workloads::Family::kGtcReadOnly, workloads::Family::kMicro2KB},
  };
  constexpr std::uint32_t kRanks = 8;  // two tenants fit 2x8 per socket

  for (const auto& pair : pairs) {
    const auto spec_a = workloads::make_workflow(pair.a, kRanks);
    const auto spec_b = workloads::make_workflow(pair.b, kRanks);

    auto alone_a = runner.run(spec_a, deploy(0));
    auto alone_b = runner.run(spec_b, deploy(0));
    if (!alone_a.has_value() || !alone_b.has_value()) {
      std::cerr << "error running tenants alone\n";
      return 1;
    }

    for (const bool split : {false, true}) {
      const workflow::Deployment deployments[] = {
          {spec_a, deploy(0)}, {spec_b, deploy(split ? 1u : 0u)}};
      auto together = runner.run_colocated(deployments);
      if (!together.has_value()) {
        std::cerr << "error: " << together.error().message << "\n";
        return 1;
      }
      const double slowdown_a =
          static_cast<double>(together->workflows[0].total_ns) /
          static_cast<double>(alone_a->total_ns);
      const double slowdown_b =
          static_cast<double>(together->workflows[1].total_ns) /
          static_cast<double>(alone_b->total_ns);
      const char* layout = split ? "split sockets" : "same socket";
      table.add_row({spec_a.label, spec_b.label, layout,
                     format("%.2fx", slowdown_a),
                     format("%.2fx", slowdown_b)});
      csv.add_row({spec_a.label, spec_b.label, layout,
                   format("%.4f", slowdown_a),
                   format("%.4f", slowdown_b)});
    }
  }
  table.write(std::cout);
  std::cout << "\nslowdown = co-located runtime / standalone runtime "
               "(both tenants at 8 ranks, parallel mode).\n"
               "Splitting tenants' channels across sockets consistently "
               "reduces mutual interference -- the multi-tenant analogue "
               "of the paper's placement decision.\n";

  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return 0;
}
