// Device characterization sweep (§II-B): regenerates the raw Optane
// behaviour the paper's reasoning is built on, straight from the
// device model:
//   - local read bandwidth scaling to 39.4 GB/s at ~17 threads
//   - local write bandwidth saturating at 13.9 GB/s by 4 threads
//   - remote-write collapse vs mild remote-read degradation
//   - idle latencies (write 90 ns < read 169 ns)
//   - small-access (sub-stripe) penalties at high thread counts
#include <cstring>
#include <iostream>
#include <vector>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "pmemsim/allocator.hpp"

namespace pmemflow {
namespace {

double aggregate_bandwidth(pmemsim::OptaneRateAllocator& allocator, int n,
                           sim::IoKind kind, sim::Locality locality,
                           Bytes op_size) {
  std::vector<sim::Flow> flows(static_cast<std::size_t>(n));
  std::vector<sim::Flow*> pointers;
  for (auto& flow : flows) {
    flow.spec.kind = kind;
    flow.spec.locality = locality;
    flow.spec.op_size = op_size;
    flow.spec.total_bytes = op_size;
    flow.remaining_bytes = static_cast<double>(op_size);
    pointers.push_back(&flow);
  }
  allocator.allocate(pointers);
  double total = 0.0;
  for (const auto& flow : flows) total += flow.progress_rate;
  return total;
}

}  // namespace
}  // namespace pmemflow

int main(int argc, char** argv) {
  using namespace pmemflow;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    }
  }

  std::cout << "=== Device characterization (paper SII-B) ===\n\n";

  pmemsim::OptaneParams params;
  interconnect::UpiModel upi;
  pmemsim::OptaneRateAllocator allocator(
      pmemsim::BandwidthModel(params, upi));

  TextTable table({"Threads", "Rd local", "Wr local", "Rd remote",
                   "Wr remote", "Rd 4K local", "Wr 4K local"},
                  {Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight});
  CsvWriter csv({"threads", "read_local_gbps", "write_local_gbps",
                 "read_remote_gbps", "write_remote_gbps",
                 "read_small_gbps", "write_small_gbps"});

  const Bytes big = 64 * kMB;
  const Bytes small = 4 * kKiB;
  for (int n : {1, 2, 4, 8, 12, 16, 17, 20, 24}) {
    const double read_local = aggregate_bandwidth(
        allocator, n, sim::IoKind::kRead, sim::Locality::kLocal, big);
    const double write_local = aggregate_bandwidth(
        allocator, n, sim::IoKind::kWrite, sim::Locality::kLocal, big);
    const double read_remote = aggregate_bandwidth(
        allocator, n, sim::IoKind::kRead, sim::Locality::kRemote, big);
    const double write_remote = aggregate_bandwidth(
        allocator, n, sim::IoKind::kWrite, sim::Locality::kRemote, big);
    const double read_small = aggregate_bandwidth(
        allocator, n, sim::IoKind::kRead, sim::Locality::kLocal, small);
    const double write_small = aggregate_bandwidth(
        allocator, n, sim::IoKind::kWrite, sim::Locality::kLocal, small);
    table.add_row({format("%d", n), format_rate(read_local),
                   format_rate(write_local), format_rate(read_remote),
                   format_rate(write_remote), format_rate(read_small),
                   format_rate(write_small)});
    csv.add_row({format("%d", n), format("%.3f", read_local),
                 format("%.3f", write_local), format("%.3f", read_remote),
                 format("%.3f", write_remote), format("%.3f", read_small),
                 format("%.3f", write_small)});
  }
  table.write(std::cout);

  pmemsim::BandwidthModel model(params, upi);
  std::cout << format(
      "\nidle latencies: read %.0f ns, write %.0f ns (paper: 169/90 ns)\n",
      model.op_latency_ns(sim::IoKind::kRead, sim::Locality::kLocal, 1.0),
      model.op_latency_ns(sim::IoKind::kWrite, sim::Locality::kLocal, 1.0));
  std::cout << format(
      "remote adders: read +%.0f ns, write +%.0f ns\n",
      upi.remote_latency_ns(false), upi.remote_latency_ns(true));
  std::cout << format(
      "remote write degradation at 24 threads: %.1fx (reads: %.2fx)\n",
      1.0 / upi.write_degradation(24.0), 1.0 / upi.read_degradation(24.0));

  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return 0;
}
