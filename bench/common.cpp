#include "bench/common.hpp"

#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/strings.hpp"
#include "metrics/report.hpp"

namespace pmemflow::bench {

int run_figure(int argc, char** argv, const FigureSpec& figure) {
  std::string csv_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    }
  }

  std::cout << "=== " << figure.title << " ===\n";
  std::cout << "workload: " << to_string(figure.family) << " over "
            << to_string(figure.stack) << ", 10 iterations/rank\n\n";

  core::Executor executor;
  CsvWriter csv(metrics::sweep_csv_header());
  int matched = 0;

  for (const Panel& panel : figure.panels) {
    const auto spec =
        workloads::make_workflow(figure.family, panel.ranks, figure.stack);
    auto sweep = executor.sweep(spec);
    if (!sweep.has_value()) {
      std::cerr << "error: " << sweep.error().message << "\n";
      return 1;
    }

    if (!quiet) {
      metrics::print_panel(
          std::cout,
          format("%s (%u ranks)", panel.caption, panel.ranks), *sweep);
    }
    const std::string measured = sweep->best().config.label();
    const bool match = measured == panel.paper_winner;
    if (match) ++matched;
    std::cout << format("paper winner: %-6s  measured winner: %-6s  %s\n\n",
                        panel.paper_winner, measured.c_str(),
                        match ? "[reproduced]" : "[DEVIATION]");
    metrics::append_sweep_rows(csv, std::string(to_string(figure.family)),
                               panel.ranks, *sweep);
  }

  std::cout << format("%d/%zu panels reproduce the paper's winner\n",
                      matched, figure.panels.size());

  if (!csv_path.empty()) {
    if (!csv.write_file(csv_path)) {
      std::cerr << "error: could not write " << csv_path << "\n";
      return 1;
    }
    std::cout << "series written to " << csv_path << "\n";
  }
  return 0;
}

}  // namespace pmemflow::bench
