// Reproduces Table I: the scheduler configuration taxonomy.
#include <iostream>

#include "common/table.hpp"
#include "core/config.hpp"

int main() {
  using namespace pmemflow;
  std::cout << "=== Table I: Summary of configurations ===\n\n";
  TextTable table({"Config label", "Execution Mode", "Placement"});
  for (const auto& config : core::all_configs()) {
    table.add_row({config.label(), core::to_string(config.mode),
                   core::to_string(config.placement)});
  }
  table.write(std::cout);

  std::cout << "\nDeployment mapping (simulation on socket 0, analytics "
               "on socket 1):\n";
  for (const auto& config : core::all_configs()) {
    const auto options = config.run_options();
    std::cout << "  " << config.label() << ": channel in socket "
              << options.channel_socket << " PMEM, "
              << (options.serial ? "I/O phases serialized"
                                 : "components co-run")
              << "\n";
  }
  return 0;
}
