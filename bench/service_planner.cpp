// Planner acceptance gate (service-subsystem extension).
//
// Enforces the three contracts the lookahead planner is built on:
//
//   1. Lookahead wins — on a bursty heterogeneous storm (bursts of
//      queued work landing on a drained mixed-backend fleet), planning
//      k >= 4 submissions jointly by min-estimated-finish beats the
//      greedy window-1 least-loaded baseline on makespan: the joint
//      plan routes each class to the backend where it finishes
//      earliest instead of filling nodes in blind load order.
//   2. Plan cache replays steady state — the same trace twice through
//      one scheduler revisits the same (window class sequence × fleet
//      state) keys, so the second run serves > 90% of its plans from
//      the memoized cache and still produces the byte-identical
//      schedule.
//   3. Cache transparency — the storm's schedule is identical with the
//      plan cache on or off (memoization is a pure cost optimization,
//      never a decision input).
//
// Appends a "service_planner" section (with the plan-cache counters)
// to BENCH_service.json for the CI artifact.
//
//   service_planner [--smoke] [--csv out.csv] [--json f]
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "devices/registry.hpp"
#include "service/arrivals.hpp"
#include "workloads/synthetic.hpp"
#include "service/scheduler.hpp"

namespace {

using namespace pmemflow;

struct Gate {
  const char* name;
  bool pass;
  std::string detail;
};

/// Mixed-backend fleet: half dram-like, half cxl-like — the regime
/// where joint planning pays, because a class's runtime differs
/// across nodes.
std::vector<service::NodeSpec> storm_fleet_specs(std::uint32_t nodes) {
  const char* presets[] = {"dram-like", "cxl-like"};
  std::vector<service::NodeSpec> specs;
  for (std::uint32_t i = 0; i < nodes; ++i) {
    service::NodeSpec spec;
    spec.backend_name = presets[i % 2];
    spec.devices = *devices::parse_backend(spec.backend_name);
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Bursty storm of two heterogeneous classes whose per-backend
/// preference is *inverted*: a compute-bound class that runs the same
/// everywhere, and a bandwidth-bound class that is fast on dram-like
/// and slow on cxl-like. When a node frees under backlog, the
/// lookahead planner picks the window entry that finishes earliest on
/// that node's backend (compute work to cxl, streaming work to dram);
/// greedy window-1 must take the queue head and mismatches half the
/// time.
std::vector<service::Submission> make_storm_stream(std::uint64_t bursts,
                                                   std::uint64_t burst_size,
                                                   SimDuration gap_ns) {
  workloads::SyntheticSimulation::Params compute_sim;
  compute_sim.object_size = 64 * kKiB;
  compute_sim.objects_per_rank = 8;
  compute_sim.compute_ns = 2.0e9;
  compute_sim.name = "storm-compute-sim";
  workloads::SyntheticAnalytics::Params compute_ana;
  compute_ana.compute_ns_per_object = 0.0;
  compute_ana.name = "storm-compute-ana";
  auto compute =
      workloads::make_synthetic_workflow(compute_sim, compute_ana, 8, 2);
  compute.label = "storm-compute";

  workloads::SyntheticSimulation::Params io_sim;
  io_sim.object_size = 64 * kMiB;
  io_sim.objects_per_rank = 8;
  io_sim.compute_ns = 0.0;
  io_sim.name = "storm-io-sim";
  workloads::SyntheticAnalytics::Params io_ana;
  io_ana.compute_ns_per_object = 0.0;
  io_ana.name = "storm-io-ana";
  auto io = workloads::make_synthetic_workflow(io_sim, io_ana, 8, 2);
  io.label = "storm-io";

  std::vector<service::Submission> stream;
  for (std::uint64_t i = 0; i < bursts * burst_size; ++i) {
    service::Submission submission;
    submission.id = i;
    submission.spec = (i % 2 == 0) ? compute : io;
    submission.arrival_ns =
        (i / burst_size) * gap_ns + (i % burst_size) * kMillisecond;
    stream.push_back(std::move(submission));
  }
  return stream;
}

Expected<service::ServiceResult> run_storm(
    const std::vector<service::Submission>& stream, std::uint32_t nodes,
    std::uint32_t window, bool plan_cache) {
  service::ServiceConfig config;
  config.nodes = nodes;
  config.queue_capacity = stream.size();
  config.defer_watermark = 1.0;
  config.policy = service::PlacementPolicy::kLeastLoaded;
  config.node_specs = storm_fleet_specs(nodes);
  config.planner.window = window;
  config.planner.plan_cache = plan_cache;
  service::OnlineScheduler scheduler(config);
  return scheduler.run(stream);
}

bool identical_schedules(const std::vector<service::CompletionRecord>& a,
                         const std::vector<service::CompletionRecord>& b,
                         std::string* detail) {
  if (a.size() != b.size()) {
    *detail = format("%zu vs %zu completions", a.size(), b.size());
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    if (x.id != y.id || x.node != y.node || x.slot != y.slot ||
        x.start_ns != y.start_ns || x.finish_ns != y.finish_ns) {
      *detail = format(
          "completion %zu differs: id %llu node %u [%llu, %llu] vs id "
          "%llu node %u [%llu, %llu]",
          i, static_cast<unsigned long long>(x.id), x.node,
          static_cast<unsigned long long>(x.start_ns),
          static_cast<unsigned long long>(x.finish_ns),
          static_cast<unsigned long long>(y.id), y.node,
          static_cast<unsigned long long>(y.start_ns),
          static_cast<unsigned long long>(y.finish_ns));
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string csv_path;
  std::string json_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  const std::uint32_t nodes = 6;
  const std::uint64_t bursts = smoke ? 6 : 20;
  const std::uint64_t burst_size = 12;
  const auto storm =
      make_storm_stream(bursts, burst_size, 20 * kSecond);

  std::cout << format(
      "=== planner gate: %zu submissions in %llu bursts of %llu, "
      "%u mixed-backend nodes%s ===\n\n",
      storm.size(), static_cast<unsigned long long>(bursts),
      static_cast<unsigned long long>(burst_size), nodes,
      smoke ? " (smoke)" : "");

  std::vector<Gate> gates;
  double greedy_makespan_s = 0.0, lookahead_makespan_s = 0.0;
  std::uint64_t lookahead_plans = 0;

  // Gate 1: window-8 joint planning beats the greedy window-1
  // least-loaded baseline on makespan.
  std::vector<service::CompletionRecord> lookahead_schedule;
  {
    bool pass = true;
    std::string detail;
    auto greedy = run_storm(storm, nodes, /*window=*/1, /*plan_cache=*/false);
    auto lookahead =
        run_storm(storm, nodes, /*window=*/8, /*plan_cache=*/false);
    if (!greedy.has_value()) {
      pass = false;
      detail = greedy.error().message;
    } else if (!lookahead.has_value()) {
      pass = false;
      detail = lookahead.error().message;
    } else {
      greedy_makespan_s =
          static_cast<double>(greedy->metrics.makespan_ns) / 1e9;
      lookahead_makespan_s =
          static_cast<double>(lookahead->metrics.makespan_ns) / 1e9;
      lookahead_plans = lookahead->metrics.plans;
      lookahead_schedule = lookahead->completions;
      if (greedy->metrics.completed != storm.size() ||
          lookahead->metrics.completed != storm.size()) {
        pass = false;
        detail = "not every submission completed";
      } else if (lookahead->metrics.makespan_ns >=
                 greedy->metrics.makespan_ns) {
        pass = false;
        detail = format("window-8 makespan %.3f s !< window-1 %.3f s",
                        lookahead_makespan_s, greedy_makespan_s);
      } else {
        detail = format("makespan %.3f s vs %.3f s (%.1f%% faster)",
                        lookahead_makespan_s, greedy_makespan_s,
                        100.0 * (1.0 - lookahead_makespan_s /
                                           greedy_makespan_s));
      }
    }
    gates.push_back({"lookahead-beats-greedy", pass, detail});
  }

  // Gate 2: the same trace twice through one scheduler — the second
  // run replays > 90% of its plans from the cache, schedule unchanged.
  double twin_hit_rate = 0.0;
  std::uint64_t twin_hits = 0, twin_misses = 0;
  {
    bool pass = true;
    std::string detail;
    service::ServiceConfig config;
    config.nodes = nodes;
    config.queue_capacity = storm.size();
    config.defer_watermark = 1.0;
    config.policy = service::PlacementPolicy::kLeastLoaded;
    config.node_specs = storm_fleet_specs(nodes);
    config.planner.window = 4;
    config.planner.plan_cache = true;
    config.planner.plan_cache_capacity = 1 << 16;
    service::OnlineScheduler scheduler(config);
    auto first = scheduler.run(storm);
    auto second = first.has_value() ? scheduler.run(storm) : first;
    if (!first.has_value()) {
      pass = false;
      detail = first.error().message;
    } else if (!second.has_value()) {
      pass = false;
      detail = second.error().message;
    } else {
      // Metrics are per-run deltas: this is the second run's own rate.
      twin_hits = second->metrics.plan_cache_hits;
      twin_misses = second->metrics.plan_cache_misses;
      twin_hit_rate = second->metrics.plan_cache_hit_rate();
      if (!identical_schedules(first->completions, second->completions,
                               &detail)) {
        pass = false;
      } else if (twin_hit_rate <= 0.9) {
        pass = false;
        detail = format("second-run hit rate %.1f%% !> 90%% (%llu/%llu)",
                        100.0 * twin_hit_rate,
                        static_cast<unsigned long long>(twin_hits),
                        static_cast<unsigned long long>(twin_hits +
                                                        twin_misses));
      } else {
        detail = format("second-run hit rate %.1f%% (%llu/%llu), "
                        "schedule identical",
                        100.0 * twin_hit_rate,
                        static_cast<unsigned long long>(twin_hits),
                        static_cast<unsigned long long>(twin_hits +
                                                        twin_misses));
      }
    }
    gates.push_back({"plan-cache-steady-state", pass, detail});
  }

  // Gate 3: the plan cache never changes the schedule.
  {
    bool pass = true;
    std::string detail;
    auto cached = run_storm(storm, nodes, /*window=*/8, /*plan_cache=*/true);
    if (!cached.has_value()) {
      pass = false;
      detail = cached.error().message;
    } else if (!identical_schedules(lookahead_schedule, cached->completions,
                                    &detail)) {
      pass = false;
    } else {
      detail = format("%zu completions identical, cache on vs off",
                      cached->completions.size());
    }
    gates.push_back({"plan-cache-transparent", pass, detail});
  }

  bool all_pass = true;
  for (const auto& gate : gates) {
    std::cout << format("%-26s %s  %s\n", gate.name,
                        gate.pass ? "PASS" : "FAIL", gate.detail.c_str());
    all_pass = all_pass && gate.pass;
  }
  std::cout << "\nresult: "
            << (all_pass ? "planner gates hold" : "planner gate FAILED")
            << "\n";

  bench::BenchJson json(json_path);
  json.set_section(
      "service_planner",
      {{"submissions", static_cast<double>(storm.size())},
       {"greedy_makespan_s", greedy_makespan_s},
       {"lookahead_makespan_s", lookahead_makespan_s},
       {"lookahead_speedup",
        lookahead_makespan_s > 0.0 ? greedy_makespan_s / lookahead_makespan_s
                                   : 0.0},
       {"lookahead_plans", static_cast<double>(lookahead_plans)},
       {"plan_cache_hits", static_cast<double>(twin_hits)},
       {"plan_cache_misses", static_cast<double>(twin_misses)},
       {"plan_cache_hit_rate", twin_hit_rate}});
  if (!json.write()) {
    std::cerr << "error: could not write " << json_path << "\n";
    return 1;
  }

  if (!csv_path.empty()) {
    CsvWriter csv({"gate", "pass", "detail"});
    for (const auto& gate : gates) {
      csv.add_row({gate.name, gate.pass ? "1" : "0", gate.detail});
    }
    if (!csv.write_file(csv_path)) {
      std::cerr << "error: could not write " << csv_path << "\n";
      return 1;
    }
  }
  return all_pass ? 0 : 1;
}
