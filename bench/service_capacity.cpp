// PMEM-capacity bench (capacity-subsystem acceptance gate).
//
// Drives one Poisson stream of long-lived multi-version workflows
// through the online scheduler four times on a small-DIMM fleet:
//
//   baseline   least-loaded, capacity model off entirely;
//   unbounded  least-loaded, every capacity knob set (retention,
//              staging) but pmem_per_socket = 0 — the model must stay
//              fully dormant;
//   blind      least-loaded with bounded per-socket pools and version
//              GC off: every channel leases its full version volume
//              and leaves it all cold at finish, so dispatches keep
//              tripping over residue — the eviction-storm regime;
//   aware      capacity-aware placement with retain-2 GC and the DRAM
//              staging tier: small retained-window leases, spill to
//              the other socket before evicting, evict before
//              deferring.
//
// Gates:
//   1. unbounded is byte-identical to baseline, record by record, and
//      reports zero capacity metrics — bounded pools are strictly
//      opt-in;
//   2. blind storms: it performs evictions (cold residue collides with
//      new leases);
//   3. aware meets the SLO the blind run collapses under: better P99
//      queueing delay AND makespan AND fewer evictions.
//
// Appends an aggregate section to BENCH_service.json (shared with
// service_throughput) for the CI artifact.
//
//   service_capacity [--submissions N] [--nodes N] [--capacity-gb G]
//                    [--smoke] [--csv f] [--json f]
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_json.hpp"
#include "common/csv.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "service/arrivals.hpp"
#include "service/scheduler.hpp"

namespace {

using namespace pmemflow;

bool identical_records(const service::CompletionRecord& a,
                       const service::CompletionRecord& b) {
  return a.id == b.id && a.label == b.label && a.priority == b.priority &&
         a.node == b.node && a.config == b.config &&
         a.cache_hit == b.cache_hit && a.arrival_ns == b.arrival_ns &&
         a.start_ns == b.start_ns && a.finish_ns == b.finish_ns &&
         a.best_runtime_ns == b.best_runtime_ns &&
         a.config_runtime_ns == b.config_runtime_ns &&
         a.preemptions == b.preemptions && a.migrations == b.migrations &&
         a.checkpoint_ns == b.checkpoint_ns && a.restore_ns == b.restore_ns &&
         a.work_executed_ns == b.work_executed_ns;
}

struct Outcome {
  const char* label = "";
  service::ServiceMetrics metrics;
  std::vector<service::CompletionRecord> completions;
};

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t submissions = 2000;
  std::uint32_t nodes = 4;
  double capacity_gb = 64.0;
  bool smoke = false;
  std::string csv_path;
  std::string json_path = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--submissions") == 0 && i + 1 < argc) {
      submissions = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--capacity-gb") == 0 && i + 1 < argc) {
      capacity_gb = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (smoke) submissions = std::min<std::uint64_t>(submissions, 400);

  service::ArrivalParams arrivals;
  arrivals.count = submissions;
  arrivals.classes = 12;
  // Long-lived channels with real volume: the gap keeps the aware run
  // stable while the blind run's eviction drains push it underwater.
  arrivals.mean_interarrival_ns = 2.0e9;
  auto stream = *service::make_submission_stream(arrivals);
  // The pool's classes run 2 iterations — too few committed versions
  // for retention to matter. Stretch every submission to 6 so a
  // capacity-blind lease (all versions) is 3x the retain-2 window.
  for (service::Submission& submission : stream) {
    submission.spec.iterations = 6;
  }

  const auto capacity_bytes =
      static_cast<Bytes>(capacity_gb * 1e9);

  std::cout << format(
      "=== Capacity: %llu submissions, %u classes, %u nodes, "
      "%.0f GB/socket ===\n\n",
      static_cast<unsigned long long>(arrivals.count), arrivals.classes,
      nodes, capacity_gb);

  service::ServiceConfig config;
  config.nodes = nodes;
  config.queue_capacity = static_cast<std::size_t>(submissions);
  config.defer_watermark = 1.0;  // identical completion sets
  config.policy = service::PlacementPolicy::kLeastLoaded;

  // The capacity knobs every bounded arm shares; pmem_per_socket is
  // what switches the model on.
  capacity::ResidencyParams bounded;
  bounded.pmem_per_socket = capacity_bytes;
  bounded.retention.retain_versions = 2;
  bounded.retention.gc = true;
  bounded.staging.stage_bytes = 2 * kGiB;

  std::vector<Outcome> outcomes;
  CsvWriter csv(service::service_csv_header());
  auto run_arm = [&](const char* label) -> bool {
    service::OnlineScheduler scheduler(config);
    auto result = scheduler.run(stream);
    if (!result.has_value()) {
      std::cerr << "error: " << label << ": " << result.error().message
                << "\n";
      return false;
    }
    Outcome outcome;
    outcome.label = label;
    outcome.metrics = result->metrics;
    outcome.completions = std::move(result->completions);
    append_service_csv_row(csv, label, outcome.metrics);
    outcomes.push_back(std::move(outcome));
    return true;
  };

  // Arm 1: capacity model off entirely.
  config.capacity = capacity::ResidencyParams{};
  if (!run_arm("baseline")) return 1;

  // Arm 2: every knob set, pools unbounded — must stay dormant.
  config.capacity = bounded;
  config.capacity.pmem_per_socket = 0;
  if (!run_arm("unbounded")) return 1;

  // Arm 3: bounded pools, GC off — the capacity-blind regime.
  config.capacity = bounded;
  config.capacity.retention.retain_versions = 0;
  config.capacity.retention.gc = false;
  config.capacity.staging.stage_bytes = 0;
  if (!run_arm("blind")) return 1;

  // Arm 4: capacity-aware placement with GC and staging.
  config.policy = service::PlacementPolicy::kCapacityAware;
  config.capacity = bounded;
  if (!run_arm("aware")) return 1;

  const Outcome& baseline = outcomes[0];
  const Outcome& unbounded = outcomes[1];
  const Outcome& blind = outcomes[2];
  const Outcome& aware = outcomes[3];

  TextTable table({"Arm", "P99 delay", "Makespan", "Evictions", "GC bytes",
                   "Stage hits", "High water"},
                  {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                   Align::kRight, Align::kRight, Align::kRight});
  for (const Outcome& outcome : outcomes) {
    const auto& m = outcome.metrics;
    table.add_row(
        {outcome.label, format("%.2f ms", m.queue_delay_ns.p99 / 1e6),
         format("%.3f s", static_cast<double>(m.makespan_ns) / 1e9),
         format("%llu", static_cast<unsigned long long>(m.evictions)),
         format("%.2f GB", static_cast<double>(m.gc_bytes) / 1e9),
         format("%llu", static_cast<unsigned long long>(m.stage_hits)),
         format("%.2f GB",
                static_cast<double>(m.residency_high_water) / 1e9)});
  }
  table.write(std::cout);

  // Gate 1: unbounded pools keep the model dormant — byte-identical
  // schedule and all-zero capacity metrics.
  bool identical =
      unbounded.completions.size() == baseline.completions.size();
  for (std::size_t i = 0; identical && i < unbounded.completions.size();
       ++i) {
    identical =
        identical_records(unbounded.completions[i], baseline.completions[i]);
  }
  const auto& um = unbounded.metrics;
  const bool dormant = um.evictions == 0 && um.gc_bytes == 0 &&
                       um.stage_hits == 0 && um.residency_high_water == 0;
  std::cout << format(
      "\nunbounded vs baseline  %llu records  %s, capacity metrics %s\n",
      static_cast<unsigned long long>(baseline.completions.size()),
      identical ? "IDENTICAL" : "DIVERGED", dormant ? "zero" : "NONZERO");

  // Gate 2: the capacity-blind run trips over cold residue.
  const bool storms = blind.metrics.evictions > 0;
  std::cout << format("blind evictions        %llu  %s\n",
                      static_cast<unsigned long long>(blind.metrics.evictions),
                      storms ? "STORM" : "none (gate vacuous)");

  // Gate 3: capacity-aware placement + GC meets the SLO blind
  // collapses under.
  const bool slo =
      aware.metrics.queue_delay_ns.p99 < blind.metrics.queue_delay_ns.p99 &&
      aware.metrics.makespan_ns < blind.metrics.makespan_ns &&
      aware.metrics.evictions < blind.metrics.evictions;
  std::cout << format(
      "aware vs blind         p99 %.2fx  makespan %.2fx  evictions "
      "%llu vs %llu  %s\n",
      blind.metrics.queue_delay_ns.p99 /
          std::max(aware.metrics.queue_delay_ns.p99, 1.0),
      static_cast<double>(blind.metrics.makespan_ns) /
          static_cast<double>(std::max<SimDuration>(aware.metrics.makespan_ns,
                                                    1)),
      static_cast<unsigned long long>(aware.metrics.evictions),
      static_cast<unsigned long long>(blind.metrics.evictions),
      slo ? "WIN" : "LOSS");

  const bool pass = identical && dormant && storms && slo;
  std::cout << "\nresult: "
            << (pass ? "capacity-aware + GC meets the SLO small DIMMs break "
                       "for capacity-blind placement"
                     : "capacity gate FAILED")
            << "\n";

  bench::BenchJson json(json_path);
  json.set_section(
      "service_capacity",
      {{"submissions", static_cast<double>(submissions)},
       {"nodes", static_cast<double>(nodes)},
       {"capacity_gb", capacity_gb},
       {"blind_p99_delay_ms", blind.metrics.queue_delay_ns.p99 / 1e6},
       {"aware_p99_delay_ms", aware.metrics.queue_delay_ns.p99 / 1e6},
       {"blind_makespan_s",
        static_cast<double>(blind.metrics.makespan_ns) / 1e9},
       {"aware_makespan_s",
        static_cast<double>(aware.metrics.makespan_ns) / 1e9},
       {"blind_evictions", static_cast<double>(blind.metrics.evictions)},
       {"aware_evictions", static_cast<double>(aware.metrics.evictions)},
       {"aware_gc_gb", static_cast<double>(aware.metrics.gc_bytes) / 1e9},
       {"aware_stage_hits", static_cast<double>(aware.metrics.stage_hits)},
       {"pass", pass ? 1.0 : 0.0}});
  if (!json.write()) {
    std::cerr << "error: could not write " << json_path << "\n";
    return 1;
  }
  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return pass ? 0 : 1;
}
