// pmemflowd — the online workflow-scheduling service, as a CLI.
//
// Drives service::OnlineScheduler with either a synthetic Poisson
// submission stream or a recorded workload trace (tools/... are
// simulation drivers: arrivals, queueing, and placement all happen on
// the deterministic simulated clock). Prints the operator dashboard;
// optionally compares all placement policies on the identical stream,
// exports CSV, records the stream back out as a trace, and writes a
// Chrome trace of the fleet timeline.
//
//   pmemflowd --submissions 20000 --nodes 8 --compare
//   pmemflowd --policy recommender --chrome-trace fleet.json
//   pmemflowd --preemption --urgent-frac 0.2   # urgent work displaces batch
//   pmemflowd --trace prod.csv --compare       # replay a recorded trace
//   pmemflowd --trace prod.csv --time-scale 0.5 --limit 5000
//   pmemflowd --record-trace out.csv           # record this run's stream
//   pmemflowd --backend dram-like --compare    # fleet on another backend
//   pmemflowd --node-backends optane-gen1,cxl-like   # heterogeneous fleet
//   pmemflowd --pmem-capacity 64 --retain-versions 2 --policy capacity
//                                              # bounded per-socket pools
//   pmemflowd --dag examples/dags/fanout_analytics.dag --policy dag-fusion
//                                              # general DAG workflows
#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dag/spec.hpp"
#include "devices/registry.hpp"
#include "service/arrivals.hpp"
#include "service/scheduler.hpp"
#include "traces/replay.hpp"
#include "traces/schema.hpp"

namespace {

using namespace pmemflow;

Expected<service::PlacementPolicy> parse_policy(const std::string& name) {
  if (name == "first-fit") return service::PlacementPolicy::kFirstFit;
  if (name == "least-loaded") return service::PlacementPolicy::kLeastLoaded;
  if (name == "recommender" || name == "recommender-aware") {
    return service::PlacementPolicy::kRecommenderAware;
  }
  if (name == "colocation" || name == "colocation-aware") {
    return service::PlacementPolicy::kColocationAware;
  }
  if (name == "capacity" || name == "capacity-aware") {
    return service::PlacementPolicy::kCapacityAware;
  }
  if (name == "dag-fusion" || name == "fusion") {
    return service::PlacementPolicy::kDagFusion;
  }
  return make_error("unknown policy '" + name +
                    "' (first-fit | least-loaded | recommender | colocation "
                    "| capacity | dag-fusion)");
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "pmemflowd: online PMEM workflow scheduling service (simulated)");
  flags.add_int("nodes", 4, "fleet size (dual-socket Optane nodes)");
  flags.add_int("queue-capacity", 64, "submission queue capacity");
  flags.add_string("policy", "recommender",
                   "placement policy: first-fit | least-loaded | recommender "
                   "| colocation | capacity | dag-fusion");
  flags.add_string("dag", "",
                   "comma-separated .dag files: general DAG workflow classes "
                   "(see docs/DAG.md). Synthetic streams convert a "
                   "deterministic --dag-frac slice of submissions to DAGs "
                   "round-robin; trace replays bind dag_fingerprint rows "
                   "against this pool");
  flags.add_double("dag-frac", 0.25,
                   "fraction of synthetic submissions converted to DAG "
                   "workflows (with --dag)");
  flags.add_double("pmem-capacity", 0.0,
                   "per-socket PMEM pool size in GB (0 = unbounded: the "
                   "capacity model stays off and schedules are unchanged)");
  flags.add_double("staging", 0.0,
                   "per-socket DRAM staging tier size in GB (with "
                   "--pmem-capacity; 0 = no staging)");
  flags.add_int("retain-versions", 0,
                "nvstream retain-k version retention: keep the k most "
                "recent snapshot versions live and GC the rest (with "
                "--pmem-capacity; 0 = recycle immediately, no GC traffic)");
  flags.add_bool("rule-based", false,
                 "recommender policy uses Table II rules instead of the "
                 "model-based estimate");
  flags.add_bool("preemption", false,
                 "urgent arrivals may checkpoint running batch/normal work "
                 "off a node (checkpoint-restore preemption)");
  flags.add_int("regions", 0,
                "epoch-synchronized fleet regions (semantic knob, clamped to "
                "--nodes; 0 = 1 region unless --shards asks for more)");
  flags.add_int("shards", 1,
                "worker threads advancing regions between epoch barriers "
                "(pure performance knob: results are byte-identical for any "
                "value)");
  flags.add_double("epoch-ms", 250.0,
                   "epoch barrier interval in simulated ms (with regions > 1)");
  flags.add_int("submissions", 2000, "number of submissions to generate");
  flags.add_int("classes", 12, "distinct workflow classes in the pool");
  flags.add_double("mean-gap-ms", 50.0,
                   "mean Poisson inter-arrival gap (simulated ms)");
  flags.add_int("seed", 42, "stream + pool seed");
  flags.add_double("urgent-frac", 0.10, "fraction of kUrgent submissions");
  flags.add_double("batch-frac", 0.30, "fraction of kBatch submissions");
  flags.add_int("cache-capacity", 1024, "profile cache capacity (classes)");
  flags.add_int("planner-window", 1,
                "lookahead window: submissions planned jointly per "
                "scheduler wake-up (1 = classic greedy, byte-identical to "
                "the pre-planner scheduler)");
  flags.add_bool("plan-cache", false,
                 "memoize window plans keyed on (window class sequence x "
                 "fleet/device/residency state); schedules are unchanged, "
                 "repeated states skip re-planning");
  flags.add_int("plan-cache-capacity", 1024,
                "memoized plans retained before the cache resets (with "
                "--plan-cache)");
  flags.add_string("backend", "optane-gen1",
                   "memory backend preset for every node (see docs/DEVICES.md;"
                   " 'a/b' selects per-socket backends)");
  flags.add_string("node-backends", "",
                   "comma-separated backend presets assigned round-robin "
                   "across nodes (heterogeneous fleet; overrides --backend "
                   "for placement-sensitive lookups)");
  flags.add_bool("compare", false,
                 "run every placement policy on the identical stream");
  flags.add_string("csv", "", "append per-policy metrics rows to this file");
  flags.add_string("trace", "",
                   "replay this workload trace instead of generating a "
                   "synthetic stream (class_id rows bind against the "
                   "--classes/--seed pool)");
  flags.add_double("time-scale", 1.0,
                   "multiply replayed arrival times (with --trace): < 1 "
                   "compresses, > 1 stretches");
  flags.add_double("horizon-ms", 0.0,
                   "drop replayed arrivals after this scaled time "
                   "(with --trace; 0 = no horizon)");
  flags.add_int("limit", 0,
                "replay at most this many submissions (with --trace; "
                "0 = all)");
  flags.add_string("record-trace", "",
                   "record the submission stream (synthetic or replayed) "
                   "to this trace file");
  flags.add_string("chrome-trace", "",
                   "write a Chrome trace of the fleet timeline here "
                   "(single-policy mode only)");
  auto status = flags.parse(argc, argv);
  if (!status.has_value()) {
    std::cerr << status.error().message << "\n";
    return status.error().message.find("usage:") != std::string::npos ? 0 : 2;
  }

  service::ArrivalParams arrivals;
  arrivals.count = static_cast<std::uint64_t>(flags.get_int("submissions"));
  arrivals.classes = static_cast<std::uint32_t>(flags.get_int("classes"));
  arrivals.mean_interarrival_ns = flags.get_double("mean-gap-ms") * 1e6;
  arrivals.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  arrivals.urgent_fraction = flags.get_double("urgent-frac");
  arrivals.batch_fraction = flags.get_double("batch-frac");

  // DAG workflow classes (satellites of the pair stream). For synthetic
  // streams a deterministic slice of submissions is converted below; for
  // trace replays the pool binds dag_fingerprint rows.
  std::vector<std::shared_ptr<const dag::DagSpec>> dag_pool;
  const std::string dag_paths = flags.get_string("dag");
  if (!dag_paths.empty()) {
    for (const auto& dag_path : split(dag_paths, ',')) {
      auto spec = dag::load_dag(dag_path);
      if (!spec.has_value()) {
        std::cerr << "error: --dag: " << spec.error().message << "\n";
        return 1;
      }
      dag_pool.push_back(
          std::make_shared<const dag::DagSpec>(std::move(*spec)));
    }
  }
  const double dag_frac = flags.get_double("dag-frac");
  if (!(dag_frac > 0.0) || dag_frac > 1.0) {
    std::cerr << "error: --dag-frac must be in (0, 1]\n";
    return 1;
  }

  std::vector<service::Submission> stream;
  std::string stream_origin;
  const std::string trace_path = flags.get_string("trace");
  if (!trace_path.empty()) {
    auto trace = traces::load_trace(trace_path);
    if (!trace.has_value()) {
      std::cerr << "error: " << trace.error().message << "\n";
      return 1;
    }
    traces::ReplayOptions options;
    options.time_scale = flags.get_double("time-scale");
    options.max_arrival_ns =
        static_cast<SimTime>(flags.get_double("horizon-ms") * 1e6);
    options.limit = static_cast<std::uint64_t>(flags.get_int("limit"));
    traces::TraceReplayer replayer(
        service::make_class_pool(arrivals.classes, arrivals.seed), options);
    if (!dag_pool.empty()) replayer.set_dag_pool(dag_pool);
    auto replayed = replayer.replay(*trace);
    if (!replayed.has_value()) {
      std::cerr << "error: " << trace_path << ": "
                << replayed.error().message << "\n";
      return 1;
    }
    stream = std::move(*replayed);
    stream_origin = format("trace %s", trace_path.c_str());
  } else {
    auto generated = service::make_submission_stream(arrivals);
    if (!generated.has_value()) {
      std::cerr << "error: " << generated.error().message << "\n";
      return 1;
    }
    stream = std::move(*generated);
    stream_origin = "synthetic stream";
    if (!dag_pool.empty()) {
      // Deterministic conversion: every stride-th submission becomes a
      // DAG, round-robin over the loaded classes, so the same flags
      // always produce the same mixed stream.
      const auto stride = static_cast<std::size_t>(
          std::max<long long>(1, std::llround(1.0 / dag_frac)));
      std::size_t next_dag = 0;
      for (std::size_t i = 0; i < stream.size(); ++i) {
        if (i % stride != 0) continue;
        stream[i].dag = dag_pool[next_dag++ % dag_pool.size()];
        stream[i].spec = workflow::WorkflowSpec{};
      }
      stream_origin += format(" + %zu dags", next_dag);
    }
  }

  const std::string record_path = flags.get_string("record-trace");
  if (!record_path.empty()) {
    const auto pool =
        service::make_class_pool(arrivals.classes, arrivals.seed);
    auto written =
        traces::write_trace(traces::record_trace(stream, pool), record_path);
    if (!written.has_value()) {
      std::cerr << "error: " << written.error().message << "\n";
      return 1;
    }
  }

  service::ServiceConfig config;
  config.nodes = static_cast<std::uint32_t>(flags.get_int("nodes"));
  config.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue-capacity"));
  if (config.nodes == 0 || config.queue_capacity == 0) {
    std::cerr << "error: --nodes and --queue-capacity must be >= 1\n";
    return 1;
  }
  config.use_rule_based = flags.get_bool("rule-based");
  config.preemption = flags.get_bool("preemption")
                          ? service::PreemptionPolicy::kCheckpointRestore
                          : service::PreemptionPolicy::kNone;
  config.cache_capacity =
      static_cast<std::size_t>(flags.get_int("cache-capacity"));
  if (flags.get_int("planner-window") < 1 ||
      flags.get_int("plan-cache-capacity") < 1) {
    std::cerr << "error: --planner-window and --plan-cache-capacity must "
                 "be >= 1\n";
    return 1;
  }
  config.planner.window =
      static_cast<std::uint32_t>(flags.get_int("planner-window"));
  config.planner.plan_cache = flags.get_bool("plan-cache");
  config.planner.plan_cache_capacity =
      static_cast<std::size_t>(flags.get_int("plan-cache-capacity"));
  const double pmem_capacity_gb = flags.get_double("pmem-capacity");
  if (pmem_capacity_gb < 0.0 || flags.get_double("staging") < 0.0 ||
      flags.get_int("retain-versions") < 0) {
    std::cerr << "error: --pmem-capacity, --staging, and --retain-versions "
                 "must be >= 0\n";
    return 1;
  }
  config.capacity.pmem_per_socket =
      static_cast<Bytes>(pmem_capacity_gb * 1e9);
  config.capacity.staging.stage_bytes =
      static_cast<Bytes>(flags.get_double("staging") * 1e9);
  config.capacity.retention.retain_versions =
      static_cast<std::uint32_t>(flags.get_int("retain-versions"));

  // Sharding: --regions picks the (semantic) fleet split, --shards the
  // worker threads. `--shards N` alone shards the fleet min(nodes, N)
  // ways so the threads have regions to own.
  if (flags.get_int("regions") < 0 || flags.get_int("shards") < 1 ||
      flags.get_double("epoch-ms") <= 0.0) {
    std::cerr << "error: --regions must be >= 0, --shards >= 1, "
                 "--epoch-ms > 0\n";
    return 1;
  }
  const auto shards = static_cast<std::uint32_t>(flags.get_int("shards"));
  auto regions = static_cast<std::uint32_t>(flags.get_int("regions"));
  if (regions == 0) regions = shards > 1 ? std::min(config.nodes, shards) : 1;
  config.sharding.regions = regions;
  config.sharding.threads = shards;
  config.sharding.epoch_ns =
      static_cast<SimDuration>(flags.get_double("epoch-ms") * 1e6);

  // Fleet memory backend(s). --backend sets the uniform fleet backend
  // (the scheduler executor's Runner); --node-backends builds a
  // heterogeneous fleet by assigning presets round-robin across nodes.
  const std::string backend_name = flags.get_string("backend");
  auto backend = devices::parse_backend(backend_name);
  if (!backend.has_value()) {
    std::cerr << "error: --backend: " << backend.error().message << "\n";
    return 1;
  }
  core::Executor executor{
      workflow::Runner(topo::PlatformSpec{}, *backend)};
  std::string fleet_desc = backend_name;
  const std::string node_backends = flags.get_string("node-backends");
  if (!node_backends.empty()) {
    const auto names = split(node_backends, ',');
    std::vector<service::NodeSpec> specs;
    for (std::uint32_t i = 0; i < config.nodes; ++i) {
      const std::string& name = names[i % names.size()];
      auto node_backend = devices::parse_backend(name);
      if (!node_backend.has_value()) {
        std::cerr << "error: --node-backends: "
                  << node_backend.error().message << "\n";
        return 1;
      }
      specs.push_back(service::NodeSpec{name, *node_backend});
    }
    config.node_specs = std::move(specs);
    fleet_desc = join(names, "+") + " (round-robin)";
  }

  CsvWriter csv(service::service_csv_header());

  if (flags.get_bool("compare")) {
    TextTable table({"Policy", "Mean delay", "P99 delay", "Makespan",
                     "Slowdown", "Util", "Plans", "Plan hits"},
                    {Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                     Align::kRight, Align::kRight, Align::kRight,
                     Align::kRight});
    std::vector<service::PlacementPolicy> policies = {
        service::PlacementPolicy::kFirstFit,
        service::PlacementPolicy::kLeastLoaded,
        service::PlacementPolicy::kRecommenderAware,
        service::PlacementPolicy::kColocationAware};
    if (config.capacity.enabled()) {
      policies.push_back(service::PlacementPolicy::kCapacityAware);
    }
    if (std::any_of(stream.begin(), stream.end(),
                    [](const service::Submission& s) {
                      return s.dag != nullptr;
                    })) {
      policies.push_back(service::PlacementPolicy::kDagFusion);
    }
    for (const auto policy : policies) {
      config.policy = policy;
      service::OnlineScheduler scheduler(config, executor);
      auto result = scheduler.run(stream);
      if (!result.has_value()) {
        std::cerr << "error: " << result.error().message << "\n";
        return 1;
      }
      const auto& m = result->metrics;
      table.add_row({to_string(policy),
                     format("%.2f ms", m.queue_delay_ns.mean / 1e6),
                     format("%.2f ms", m.queue_delay_ns.p99 / 1e6),
                     format("%.3f s", static_cast<double>(m.makespan_ns) / 1e9),
                     format("%.3fx", m.slowdown.mean),
                     format("%.1f %%", 100.0 * m.mean_utilization),
                     format("%llu", static_cast<unsigned long long>(m.plans)),
                     format("%.1f %%", 100.0 * m.plan_cache_hit_rate())});
      append_service_csv_row(csv, to_string(policy), m);
    }
    std::cout << format(
        "=== %zu submissions (%s), %u nodes, backend %s, "
        "planner window %u%s ===\n\n",
        stream.size(), stream_origin.c_str(), config.nodes,
        fleet_desc.c_str(), config.planner.window,
        config.planner.plan_cache ? ", plan cache on" : "");
    table.write(std::cout);
  } else {
    auto policy = parse_policy(flags.get_string("policy"));
    if (!policy.has_value()) {
      std::cerr << "error: " << policy.error().message << "\n";
      return 1;
    }
    config.policy = *policy;
    trace::Tracer tracer;
    const std::string chrome_path = flags.get_string("chrome-trace");
    if (!chrome_path.empty()) config.tracer = &tracer;

    service::OnlineScheduler scheduler(config, executor);
    auto result = scheduler.run(stream);
    if (!result.has_value()) {
      std::cerr << "error: " << result.error().message << "\n";
      return 1;
    }
    print_service_report(
        std::cout,
        format("=== pmemflowd: %s, %zu submissions (%s), %u nodes, "
               "backend %s ===",
               to_string(config.policy), stream.size(),
               stream_origin.c_str(), config.nodes, fleet_desc.c_str()),
        result->metrics);
    append_service_csv_row(csv, to_string(config.policy), result->metrics);

    if (!chrome_path.empty() &&
        !tracer.write_chrome_trace_file(chrome_path)) {
      std::cerr << "error: could not write " << chrome_path << "\n";
      return 1;
    }
  }

  const std::string csv_path = flags.get_string("csv");
  if (!csv_path.empty() && !csv.write_file(csv_path)) {
    std::cerr << "error: could not write " << csv_path << "\n";
    return 1;
  }
  return 0;
}
