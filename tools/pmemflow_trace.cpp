// pmemflow-trace — workload-trace toolbox for the scheduling service.
//
//   pmemflow-trace summarize <trace.csv>   per-priority/class/deadline stats
//   pmemflow-trace fit       <trace.csv>   fit ArrivalParams (MLE Poisson
//                                          rate, priority mix, burstiness CV,
//                                          class-mix entropy)
//   pmemflow-trace generate  <out.csv>     write a synthetic trace from
//                                          arrival flags, or a statistically
//                                          matched twin of --from <trace.csv>
//   pmemflow-trace validate  <trace.csv>   strict parse + canonical-form
//                                          check + (unless --parse-only) a
//                                          binding dry-run against the
//                                          --classes/--seed pool
//
// Traces are the versioned CSV schema in src/traces/schema.hpp; see
// docs/TRACES.md for the column reference and a walkthrough.
#include <algorithm>
#include <iostream>
#include <memory>

#include "common/flags.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dag/spec.hpp"
#include "devices/registry.hpp"
#include "service/arrivals.hpp"
#include "traces/fit.hpp"
#include "traces/replay.hpp"
#include "traces/schema.hpp"

namespace {

using namespace pmemflow;

int fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

Expected<traces::Trace> load(const std::string& path) {
  return traces::load_trace(path);
}

int run_summarize(const std::string& path) {
  auto trace = load(path);
  if (!trace.has_value()) return fail(trace.error().message);

  std::uint64_t urgent = 0, normal = 0, batch = 0, with_deadline = 0;
  std::uint64_t by_class_id = 0, by_fingerprint = 0, with_inline = 0;
  std::uint64_t by_dag = 0;
  SimTime first = 0, last = 0;
  for (std::size_t i = 0; i < trace->records.size(); ++i) {
    const auto& record = trace->records[i];
    switch (record.priority) {
      case service::Priority::kUrgent: ++urgent; break;
      case service::Priority::kNormal: ++normal; break;
      case service::Priority::kBatch: ++batch; break;
    }
    if (record.deadline_ns.has_value()) ++with_deadline;
    if (record.class_id.has_value()) ++by_class_id;
    if (record.class_fingerprint.has_value()) ++by_fingerprint;
    if (record.inline_class.has_value()) ++with_inline;
    if (record.dag_fingerprint.has_value()) ++by_dag;
    first = i == 0 ? record.arrival_ns : std::min(first, record.arrival_ns);
    last = std::max(last, record.arrival_ns);
  }

  std::cout << format("=== %s (schema v%u) ===\n\n", path.c_str(),
                      trace->version);
  TextTable table({"Field", "Value"}, {Align::kLeft, Align::kRight});
  const auto count = trace->records.size();
  table.add_row({"records", format("%zu", count)});
  table.add_row({"span", format("%.3f s",
                                static_cast<double>(last - first) / 1e9)});
  table.add_row({"urgent", format("%llu",
                                  static_cast<unsigned long long>(urgent))});
  table.add_row({"normal", format("%llu",
                                  static_cast<unsigned long long>(normal))});
  table.add_row({"batch", format("%llu",
                                 static_cast<unsigned long long>(batch))});
  table.add_row(
      {"with deadline",
       format("%llu", static_cast<unsigned long long>(with_deadline))});
  table.add_row(
      {"bound by class_id",
       format("%llu", static_cast<unsigned long long>(by_class_id))});
  table.add_row(
      {"with fingerprint",
       format("%llu", static_cast<unsigned long long>(by_fingerprint))});
  table.add_row(
      {"self-contained (inline)",
       format("%llu", static_cast<unsigned long long>(with_inline))});
  table.add_row(
      {"bound by dag_fingerprint",
       format("%llu", static_cast<unsigned long long>(by_dag))});

  if (auto fit = traces::fit_arrival_params(*trace); fit.has_value()) {
    table.add_row({"arrival rate",
                   format("%.2f /s", fit->arrival_rate_per_s)});
    table.add_row({"distinct classes",
                   format("%u", fit->params.classes)});
  }
  table.write(std::cout);
  return 0;
}

int run_fit(const std::string& path) {
  auto trace = load(path);
  if (!trace.has_value()) return fail(trace.error().message);
  auto fit = traces::fit_arrival_params(*trace);
  if (!fit.has_value()) return fail(fit.error().message);

  std::cout << format("=== fit of %s ===\n\n", path.c_str());
  TextTable table({"Parameter", "Value"}, {Align::kLeft, Align::kRight});
  table.add_row({"records", format("%llu", static_cast<unsigned long long>(
                                               fit->records))});
  table.add_row({"mean inter-arrival",
                 format("%.3f ms", fit->params.mean_interarrival_ns / 1e6)});
  table.add_row({"arrival rate", format("%.2f /s", fit->arrival_rate_per_s)});
  table.add_row({"burstiness CV", format("%.3f", fit->burstiness_cv)});
  table.add_row({"classes", format("%u", fit->params.classes)});
  table.add_row({"class-mix entropy",
                 format("%.3f / %.3f bits", fit->class_mix_entropy_bits,
                        fit->class_mix_entropy_max_bits)});
  table.add_row({"urgent fraction",
                 format("%.3f", fit->params.urgent_fraction)});
  table.add_row({"batch fraction",
                 format("%.3f", fit->params.batch_fraction)});
  table.add_row(
      {"with deadline",
       format("%llu", static_cast<unsigned long long>(fit->with_deadline))});
  table.write(std::cout);

  std::cout << format(
      "\nequivalent generator flags:\n  --submissions %llu --classes %u "
      "--mean-gap-ms %.6g --urgent-frac %.4g --batch-frac %.4g\n",
      static_cast<unsigned long long>(fit->params.count),
      fit->params.classes, fit->params.mean_interarrival_ns / 1e6,
      fit->params.urgent_fraction, fit->params.batch_fraction);
  return 0;
}

int run_generate(const std::string& path, const FlagParser& flags) {
  // Traces are backend-agnostic (class mix + arrival process), but
  // operators generate them with a target fleet in mind: resolve the
  // preset now so a typo fails here, and echo the fingerprint the
  // service will key its caches by.
  const std::string backend_name = flags.get_string("backend");
  if (!backend_name.empty()) {
    const auto backend = devices::parse_backend(backend_name);
    if (!backend.has_value()) {
      return fail("--backend: " + backend.error().message);
    }
    std::cout << format(
        "target backend %s (device fingerprint %016llx)\n",
        backend_name.c_str(),
        static_cast<unsigned long long>(backend->fingerprint()));
  }

  service::ArrivalParams params;
  params.count = static_cast<std::uint64_t>(flags.get_int("count"));
  params.classes = static_cast<std::uint32_t>(flags.get_int("classes"));
  params.mean_interarrival_ns = flags.get_double("mean-gap-ms") * 1e6;
  params.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  params.urgent_fraction = flags.get_double("urgent-frac");
  params.batch_fraction = flags.get_double("batch-frac");

  const std::string from = flags.get_string("from");
  if (!from.empty()) {
    auto source = load(from);
    if (!source.has_value()) return fail(source.error().message);
    auto fit = traces::fit_arrival_params(*source, params.seed);
    if (!fit.has_value()) return fail(fit.error().message);
    params = fit->params;
    params.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
    std::cout << format(
        "fitted %s: %llu records, %.2f /s, %u classes\n", from.c_str(),
        static_cast<unsigned long long>(fit->records),
        fit->arrival_rate_per_s, fit->params.classes);
  }

  auto stream = service::make_submission_stream(params);
  if (!stream.has_value()) return fail(stream.error().message);
  const auto pool = service::make_class_pool(params.classes, params.seed);
  auto written =
      traces::write_trace(traces::record_trace(*stream, pool), path);
  if (!written.has_value()) return fail(written.error().message);
  std::cout << format("wrote %zu records to %s\n", stream->size(),
                      path.c_str());
  return 0;
}

int run_validate(const std::string& path, const FlagParser& flags) {
  auto trace = load(path);
  if (!trace.has_value()) return fail(trace.error().message);
  std::cout << format("%s: schema v%u, %zu records parse cleanly\n",
                      path.c_str(), trace->version, trace->records.size());

  const auto canonical = traces::serialize_trace(*trace);
  auto reparsed = traces::parse_trace(canonical);
  if (!reparsed.has_value() ||
      traces::serialize_trace(*reparsed) != canonical) {
    return fail(path + ": serialization is not canonical (round-trip "
                       "changed the bytes) — schema bug, please report");
  }

  if (flags.get_bool("parse-only")) return 0;

  traces::TraceReplayer replayer(service::make_class_pool(
      static_cast<std::uint32_t>(flags.get_int("classes")),
      static_cast<std::uint64_t>(flags.get_int("seed"))));
  const std::string dag_paths = flags.get_string("dags");
  if (!dag_paths.empty()) {
    std::vector<std::shared_ptr<const dag::DagSpec>> dag_pool;
    for (const auto& dag_path : split(dag_paths, ',')) {
      auto spec = dag::load_dag(dag_path);
      if (!spec.has_value()) return fail(spec.error().message);
      dag_pool.push_back(
          std::make_shared<const dag::DagSpec>(std::move(*spec)));
    }
    replayer.set_dag_pool(std::move(dag_pool));
  }
  auto stream = replayer.replay(*trace);
  if (!stream.has_value()) {
    return fail(path + ": parses but does not bind: " +
                stream.error().message);
  }
  std::cout << format(
      "%s: all %zu records bind against the --classes %lld --seed %lld "
      "pool\n",
      path.c_str(), stream->size(),
      static_cast<long long>(flags.get_int("classes")),
      static_cast<long long>(flags.get_int("seed")));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "pmemflow-trace <summarize|fit|generate|validate> <file> [flags]: "
      "workload-trace toolbox (see docs/TRACES.md)");
  flags.add_int("count", 2000, "generate: number of submissions");
  flags.add_int("classes", 12,
                "generate/validate: workflow classes in the pool");
  flags.add_double("mean-gap-ms", 50.0,
                   "generate: mean Poisson inter-arrival gap (ms)");
  flags.add_int("seed", 42, "generate/validate: stream + pool seed");
  flags.add_double("urgent-frac", 0.10,
                   "generate: fraction of kUrgent submissions");
  flags.add_double("batch-frac", 0.30,
                   "generate: fraction of kBatch submissions");
  flags.add_string("backend", "",
                   "generate: resolve this memory-backend preset and echo "
                   "its device fingerprint (traces themselves are "
                   "backend-agnostic)");
  flags.add_string("from", "",
                   "generate: fit this trace and generate its "
                   "statistically matched synthetic twin");
  flags.add_bool("parse-only", false,
                 "validate: skip the pool binding dry-run");
  flags.add_string("dags", "",
                   "validate: comma-separated .dag files forming the DAG "
                   "pool that dag_fingerprint rows bind against");
  auto status = flags.parse(argc, argv);
  if (!status.has_value()) {
    std::cerr << status.error().message << "\n";
    return status.error().message.find("usage:") != std::string::npos ? 0 : 2;
  }

  const auto& positional = flags.positional();
  if (positional.size() != 2) {
    std::cerr << "usage: pmemflow-trace <summarize|fit|generate|validate> "
                 "<file> [flags]\n";
    return 2;
  }
  const auto& command = positional[0];
  const auto& path = positional[1];
  if (command == "summarize") return run_summarize(path);
  if (command == "fit") return run_fit(path);
  if (command == "generate") return run_generate(path, flags);
  if (command == "validate") return run_validate(path, flags);
  std::cerr << "error: unknown command '" << command
            << "' (summarize | fit | generate | validate)\n";
  return 2;
}
