// Calibration harness for the device/stack model.
//
// Runs the paper's 18-workflow suite under all four configurations and
// scores the outcome against the qualitative acceptance criteria from
// DESIGN.md §4 (expected winner per figure panel plus the margin
// anchors the paper quotes). With --search N it performs a seeded
// random-restart hill climb over the model knobs and prints the best
// parameter set found, which is then baked into the library defaults.
//
// This tool is for maintainers; it is not part of the figure benches.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "core/executor.hpp"
#include "devices/registry.hpp"
#include "workloads/analytics.hpp"
#include "workloads/gtc.hpp"
#include "workloads/microbench.hpp"
#include "workloads/miniamr.hpp"
#include "workloads/suite.hpp"

namespace pmemflow {
namespace {

using core::ConfigSweep;
using core::DeploymentConfig;
using workloads::Family;

/// Everything the search may tune.
struct Knobs {
  pmemsim::OptaneParams optane;
  interconnect::UpiParams upi;
  stack::SoftwareCostModel nvstream = stack::nvstream_cost_model();
  workloads::GtcSimulation::Params gtc;
  workloads::MiniAmrSimulation::Params miniamr;
  workloads::MatrixMultAnalytics::Params gtc_mm{
      .matrix_edge = 512, .mults_per_object = 5.0, .flops_per_ns = 8.0};
  workloads::MatrixMultAnalytics::Params miniamr_mm{
      .matrix_edge = 20, .mults_per_object = 5.0, .flops_per_ns = 8.0};
};

workflow::WorkflowSpec build(const Knobs& knobs, Family family,
                             std::uint32_t ranks) {
  workflow::WorkflowSpec spec;
  spec.ranks = ranks;
  spec.iterations = 10;
  spec.stack = workflow::WorkflowSpec::Stack::kNvStream;
  spec.cost_override = knobs.nvstream;
  spec.verify_reads = false;  // host-time optimization for the search
  switch (family) {
    case Family::kMicro64MB:
      spec.simulation = workloads::micro_64mb();
      spec.analytics = workloads::readonly_analytics();
      break;
    case Family::kMicro2KB:
      spec.simulation = workloads::micro_2kb();
      spec.analytics = workloads::readonly_analytics();
      break;
    case Family::kGtcReadOnly:
      spec.simulation =
          std::make_shared<workloads::GtcSimulation>(knobs.gtc);
      spec.analytics = workloads::readonly_analytics();
      break;
    case Family::kGtcMatrixMult:
      spec.simulation =
          std::make_shared<workloads::GtcSimulation>(knobs.gtc);
      spec.analytics = std::make_shared<workloads::MatrixMultAnalytics>(
          knobs.gtc_mm, "mm-gtc");
      break;
    case Family::kMiniAmrReadOnly:
      spec.simulation =
          std::make_shared<workloads::MiniAmrSimulation>(knobs.miniamr);
      spec.analytics = workloads::readonly_analytics();
      break;
    case Family::kMiniAmrMatrixMult:
      spec.simulation =
          std::make_shared<workloads::MiniAmrSimulation>(knobs.miniamr);
      spec.analytics = std::make_shared<workloads::MatrixMultAnalytics>(
          knobs.miniamr_mm, "mm-amr");
      break;
  }
  spec.label = format("%s@%u", to_string(family), ranks);
  return spec;
}

/// Expected winner per panel (paper Figs 4-9, Table II).
struct PanelExpectation {
  Family family;
  std::uint32_t ranks;
  const char* winner;
};

const std::vector<PanelExpectation>& expectations() {
  static const std::vector<PanelExpectation> table = {
      {Family::kMicro64MB, 8, "S-LocW"},
      {Family::kMicro64MB, 16, "S-LocW"},
      {Family::kMicro64MB, 24, "S-LocW"},
      {Family::kMicro2KB, 8, "P-LocR"},
      {Family::kMicro2KB, 16, "P-LocR"},
      {Family::kMicro2KB, 24, "S-LocR"},
      {Family::kGtcReadOnly, 8, "P-LocR"},
      {Family::kGtcReadOnly, 16, "S-LocR"},
      {Family::kGtcReadOnly, 24, "S-LocW"},
      {Family::kGtcMatrixMult, 8, "P-LocR"},
      {Family::kGtcMatrixMult, 16, "P-LocR"},
      {Family::kGtcMatrixMult, 24, "S-LocW"},
      {Family::kMiniAmrReadOnly, 8, "P-LocR"},
      {Family::kMiniAmrReadOnly, 16, "S-LocR"},
      {Family::kMiniAmrReadOnly, 24, "S-LocW"},
      {Family::kMiniAmrMatrixMult, 8, "P-LocW"},
      {Family::kMiniAmrMatrixMult, 16, "S-LocW"},
      {Family::kMiniAmrMatrixMult, 24, "S-LocW"},
  };
  return table;
}

/// Margin anchors: runtime(slower)/runtime(faster) targets the paper
/// quotes. Scored softly.
struct MarginAnchor {
  Family family;
  std::uint32_t ranks;
  const char* slower;
  const char* faster;
  double target;  // expected ratio, > 1
};

const std::vector<MarginAnchor>& margin_anchors() {
  static const std::vector<MarginAnchor> table = {
      // Fig 4c: S-LocW up to 2.5x better than other scenarios.
      {Family::kMicro64MB, 24, "S-LocR", "S-LocW", 2.5},
      // Fig 5a/5b: P-LocR 10-14% faster than S-LocR.
      {Family::kMicro2KB, 8, "S-LocR", "P-LocR", 1.12},
      {Family::kMicro2KB, 16, "S-LocR", "P-LocR", 1.10},
      // Fig 5c: S-LocR 11.5% faster than parallel.
      {Family::kMicro2KB, 24, "P-LocR", "S-LocR", 1.115},
      // Fig 6b: S-LocR 6-7% faster than parallel.
      {Family::kGtcReadOnly, 16, "P-LocR", "S-LocR", 1.065},
      // Fig 6c: S-LocW 6% faster than S-LocR.
      {Family::kGtcReadOnly, 24, "S-LocR", "S-LocW", 1.06},
      // Fig 7a: parallel 3-9% faster than serial.
      {Family::kGtcMatrixMult, 8, "S-LocR", "P-LocR", 1.06},
      // Fig 8b: S-LocR 6% faster than P-LocR.
      {Family::kMiniAmrReadOnly, 16, "P-LocR", "S-LocR", 1.06},
      // Fig 8c: S-LocW 25% faster than S-LocR.
      {Family::kMiniAmrReadOnly, 24, "S-LocR", "S-LocW", 1.25},
      // Fig 9a: P-LocW 7% better than P-LocR.
      {Family::kMiniAmrMatrixMult, 8, "P-LocR", "P-LocW", 1.07},
  };
  return table;
}

double runtime_of(const ConfigSweep& sweep, const char* label) {
  for (const auto& result : sweep.results) {
    if (result.config.label() == label) {
      return static_cast<double>(result.run.total_ns);
    }
  }
  std::fprintf(stderr, "unknown config %s\n", label);
  std::abort();
}

struct Evaluation {
  double score = 0.0;
  int winners_correct = 0;
  std::map<std::pair<int, std::uint32_t>, ConfigSweep> sweeps;
  std::vector<std::string> report_lines;
};

Evaluation evaluate(const Knobs& knobs, bool verbose) {
  core::Executor executor{workflow::Runner({}, knobs.optane, knobs.upi)};
  Evaluation eval;

  for (const auto& panel : expectations()) {
    const auto spec = build(knobs, panel.family, panel.ranks);
    auto sweep = executor.sweep(spec);
    if (!sweep.has_value()) {
      std::fprintf(stderr, "sweep failed: %s\n",
                   sweep.error().message.c_str());
      std::abort();
    }
    const std::string actual = sweep->best().config.label();
    const bool correct = (actual == panel.winner);
    double panel_score;
    if (correct) {
      panel_score = 1.0;
      ++eval.winners_correct;
    } else {
      // Partial credit (capped well below a correct winner, so the
      // search cannot profit from flattening all configs into a tie)
      // when the expected config is nearly optimal.
      const double expected_ns = runtime_of(*sweep, panel.winner);
      const double best_ns =
          static_cast<double>(sweep->best().run.total_ns);
      const double regret = expected_ns / best_ns - 1.0;
      panel_score = std::max(0.0, 0.5 - 5.0 * regret);
    }
    eval.score += panel_score;
    if (verbose) {
      std::string line = format(
          "%-22s expect %-6s got %-6s %s [", spec.label.c_str(),
          panel.winner, actual.c_str(), correct ? "OK  " : "MISS");
      for (std::size_t i = 0; i < sweep->results.size(); ++i) {
        line += format("%s=%.3fs ",
                       sweep->results[i].config.label().c_str(),
                       static_cast<double>(sweep->results[i].run.total_ns) /
                           1e9);
      }
      line += "]";
      eval.report_lines.push_back(std::move(line));
    }
    eval.sweeps.emplace(
        std::make_pair(static_cast<int>(panel.family), panel.ranks),
        *std::move(sweep));
  }

  for (const auto& anchor : margin_anchors()) {
    const auto& sweep =
        eval.sweeps.at({static_cast<int>(anchor.family), anchor.ranks});
    const double ratio =
        runtime_of(sweep, anchor.slower) / runtime_of(sweep, anchor.faster);
    // Normalize the miss against the *excess over parity*, so a ratio
    // of 1.0 (configs indistinguishable) scores zero for any target.
    const double closeness = std::max(
        0.0, 1.0 - std::abs(ratio - anchor.target) / (anchor.target - 1.0));
    eval.score += 0.5 * closeness;
    if (verbose) {
      eval.report_lines.push_back(format(
          "margin %-20s@%-2u %s/%s = %.3f (target %.3f)",
          to_string(anchor.family), anchor.ranks, anchor.slower,
          anchor.faster, ratio, anchor.target));
    }
  }
  return eval;
}

/// Tunable knob descriptor for the random search.
struct KnobRange {
  const char* name;
  double* value;
  double lo;
  double hi;
};

std::vector<KnobRange> knob_ranges(Knobs& knobs) {
  return {
      {"optane.mixed_interference", &knobs.optane.mixed_interference, 0.0,
       0.4},
      {"optane.cache_thrash_threshold",
       &knobs.optane.cache_thrash_threshold, 6.0, 30.0},
      {"optane.cache_thrash_coeff", &knobs.optane.cache_thrash_coeff, 0.0,
       0.2},
      {"optane.small_access_coeff", &knobs.optane.small_access_coeff, 0.0,
       0.8},
      {"optane.small_stall_knee", &knobs.optane.small_stall_knee, 8.0,
       32.0},
      {"optane.small_stall_quad", &knobs.optane.small_stall_quad, 1e-4,
       6e-3},
      {"optane.small_access_flows", &knobs.optane.small_access_flows, 6.0,
       32.0},
      {"optane.per_thread_small_read_cap",
       &knobs.optane.per_thread_small_read_cap, 0.5, 2.9},
      {"optane.per_thread_small_write_cap",
       &knobs.optane.per_thread_small_write_cap, 0.5, 3.5},
      {"optane.write_decline_per_thread",
       &knobs.optane.write_decline_per_thread, 0.0, 0.05},
      {"optane.latency_load_coeff", &knobs.optane.latency_load_coeff, 0.0,
       0.1},
      {"upi.write_contention_knee", &knobs.upi.write_contention_knee, 2.0,
       8.0},
      {"upi.write_contention_slope", &knobs.upi.write_contention_slope, 0.05,
       2.0},
      {"upi.write_contention_floor", &knobs.upi.write_contention_floor, 0.1,
       0.6},
      {"upi.remote_write_ceiling", &knobs.upi.remote_write_ceiling, 4.0,
       13.9},
      {"upi.remote_write_latency_ns", &knobs.upi.remote_write_latency_ns,
       10.0, 300.0},
      {"upi.remote_read_latency_ns", &knobs.upi.remote_read_latency_ns, 60.0,
       600.0},
      {"nvstream.write_ns_per_op", &knobs.nvstream.write_ns_per_op, 1000.0,
       14000.0},
      {"nvstream.read_ns_per_op", &knobs.nvstream.read_ns_per_op, 800.0,
       12000.0},
      {"gtc.base_compute_ns", &knobs.gtc.base_compute_ns, 2e8, 6e9},
      {"gtc.compute_scaling_exponent",
       &knobs.gtc.compute_scaling_exponent, 1.0, 3.5},
      {"miniamr.stencil_ns_per_block", &knobs.miniamr.stencil_ns_per_block,
       50.0, 8000.0},
      {"gtc_mm.mults_per_object", &knobs.gtc_mm.mults_per_object, 0.5, 40.0},
      {"miniamr_mm.mults_per_object", &knobs.miniamr_mm.mults_per_object,
       0.5, 40.0},
  };
}

void print_knobs(const Knobs& knobs) {
  Knobs mutable_copy = knobs;
  for (const auto& range : knob_ranges(mutable_copy)) {
    std::printf("  %-38s = %.6g\n", range.name, *range.value);
  }
}

void search(Knobs& knobs, int budget, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Evaluation best_eval = evaluate(knobs, false);
  Knobs best = knobs;
  std::printf("initial score %.3f (%d/18 winners)\n", best_eval.score,
              best_eval.winners_correct);

  for (int i = 0; i < budget; ++i) {
    Knobs candidate = best;
    auto ranges = knob_ranges(candidate);
    // Perturb 1-3 random knobs multiplicatively.
    const int mutations = 1 + static_cast<int>(rng.below(3));
    for (int m = 0; m < mutations; ++m) {
      auto& range = ranges[rng.below(ranges.size())];
      const double factor = std::exp((rng.uniform() - 0.5) * 0.6);
      *range.value =
          std::min(range.hi, std::max(range.lo, *range.value * factor));
    }
    const Evaluation eval = evaluate(candidate, false);
    if (eval.score > best_eval.score) {
      best_eval = eval;
      best = candidate;
      std::printf("iter %4d: score %.3f (%d/18 winners)\n", i,
                  eval.score, eval.winners_correct);
    }
  }
  knobs = best;
  std::printf("\nbest score %.3f (%d/18 winners); knobs:\n",
              best_eval.score, best_eval.winners_correct);
  print_knobs(best);
}

}  // namespace
}  // namespace pmemflow

int main(int argc, char** argv) {
  using namespace pmemflow;
  int search_budget = 0;
  std::uint64_t seed = 20260706;
  std::string backend_name;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--search") == 0 && i + 1 < argc) {
      search_budget = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      backend_name = argv[++i];
    }
  }

  Knobs knobs;
  if (!backend_name.empty()) {
    // Seed the search from a registry preset instead of the library
    // defaults. Only optane-kind presets expose the full knob surface
    // (DRAM/CXL presets have no small-access or thrash regimes to
    // tune), so anything else is an error, not a silent approximation.
    const auto preset = devices::DeviceRegistry::builtin().find(backend_name);
    if (!preset.has_value()) {
      std::fprintf(stderr, "--backend: %s\n",
                   preset.error().message.c_str());
      return 2;
    }
    if (preset->spec.kind != devices::DeviceKind::kOptane) {
      std::fprintf(stderr,
                   "--backend %s: calibration tunes the Optane timing model; "
                   "pick an optane-kind preset\n",
                   backend_name.c_str());
      return 2;
    }
    knobs.optane = preset->spec.optane;
    knobs.upi = preset->spec.upi;
    std::printf("seeding knobs from preset %s\n", backend_name.c_str());
  }
  if (search_budget > 0) {
    search(knobs, search_budget, seed);
  }
  const Evaluation eval = evaluate(knobs, true);
  for (const auto& line : eval.report_lines) {
    std::printf("%s\n", line.c_str());
  }
  std::printf("\nscore %.3f, winners %d/18\n", eval.score,
              eval.winners_correct);
  return 0;
}
