// Generates the measured-results section of EXPERIMENTS.md.
//
// Runs every figure panel and the recommendation audit under the
// shipped calibration and prints markdown to stdout:
//
//   $ ./gen_experiments > measured.md
//
// Deterministic: the output is bit-identical across runs, so the
// committed EXPERIMENTS.md can be regenerated and diffed.
#include <cstdio>
#include <set>
#include <string>

#include "common/strings.hpp"
#include "core/autotuner.hpp"
#include "metrics/report.hpp"
#include "workloads/suite.hpp"

namespace pmemflow {
namespace {

struct Panel {
  workloads::Family family;
  std::uint32_t ranks;
  const char* figure;
  const char* paper_winner;
  const char* paper_note;
};

const Panel kPanels[] = {
    {workloads::Family::kMicro64MB, 8, "Fig 4a", "S-LocW", ""},
    {workloads::Family::kMicro64MB, 16, "Fig 4b", "S-LocW",
     "up to 2.5x better than other scenarios"},
    {workloads::Family::kMicro64MB, 24, "Fig 4c", "S-LocW",
     "up to 2.5x better than other scenarios"},
    {workloads::Family::kMicro2KB, 8, "Fig 5a", "P-LocR",
     "10-14% faster than S-LocR"},
    {workloads::Family::kMicro2KB, 16, "Fig 5b", "P-LocR",
     "10-14% faster than S-LocR"},
    {workloads::Family::kMicro2KB, 24, "Fig 5c", "S-LocR",
     "11.5% faster than parallel"},
    {workloads::Family::kGtcReadOnly, 8, "Fig 6a", "P-LocR",
     "parallel 3-9% faster than serial"},
    {workloads::Family::kGtcReadOnly, 16, "Fig 6b", "S-LocR",
     "6-7% faster than parallel"},
    {workloads::Family::kGtcReadOnly, 24, "Fig 6c", "S-LocW",
     "6% faster than S-LocR"},
    {workloads::Family::kGtcMatrixMult, 8, "Fig 7a", "P-LocR", ""},
    {workloads::Family::kGtcMatrixMult, 16, "Fig 7b", "P-LocR", ""},
    {workloads::Family::kGtcMatrixMult, 24, "Fig 7c", "S-LocW", ""},
    {workloads::Family::kMiniAmrReadOnly, 8, "Fig 8a", "P-LocR", ""},
    {workloads::Family::kMiniAmrReadOnly, 16, "Fig 8b", "S-LocR",
     "6% faster than P-LocR"},
    {workloads::Family::kMiniAmrReadOnly, 24, "Fig 8c", "S-LocW",
     "25% faster than S-LocR"},
    {workloads::Family::kMiniAmrMatrixMult, 8, "Fig 9a", "P-LocW",
     "7% better than P-LocR"},
    {workloads::Family::kMiniAmrMatrixMult, 16, "Fig 9b", "S-LocW", ""},
    {workloads::Family::kMiniAmrMatrixMult, 24, "Fig 9c", "S-LocW", ""},
};

}  // namespace
}  // namespace pmemflow

int main() {
  using namespace pmemflow;
  core::Executor executor;

  std::printf("## Figs 4-9: runtime per configuration "
              "(`fig04_*` ... `fig09_*`)\n\n");
  std::printf("Simulated seconds; serial runtimes split as "
              "writer+reader.\n\n");
  std::printf("| Panel | Workload | Paper winner (margin note) | Measured "
              "winner | S-LocW | S-LocR | P-LocW | P-LocR | Status |\n");
  std::printf("|---|---|---|---|---|---|---|---|---|\n");

  int reproduced = 0;
  std::set<std::string> winners;
  double worst_penalty = 1.0;
  for (const Panel& panel : kPanels) {
    const auto spec = workloads::make_workflow(panel.family, panel.ranks);
    auto sweep = executor.sweep(spec);
    if (!sweep.has_value()) {
      std::fprintf(stderr, "error: %s\n", sweep.error().message.c_str());
      return 1;
    }
    const std::string measured = sweep->best().config.label();
    const bool match = measured == panel.paper_winner;
    if (match) ++reproduced;
    winners.insert(measured);
    worst_penalty = std::max(worst_penalty, sweep->worst_case_penalty());

    std::string cells;
    for (const auto& result : sweep->results) {
      if (result.config.mode == core::ExecutionMode::kSerial) {
        cells += format(" %.1f (%.1f+%.1f) |",
                        metrics::to_seconds(result.run.total_ns),
                        metrics::to_seconds(result.run.writer_span_ns),
                        metrics::to_seconds(result.run.reader_span_ns()));
      } else {
        cells += format(" %.1f |", metrics::to_seconds(result.run.total_ns));
      }
    }
    std::printf("| %s | %s | %s%s%s%s | %s |%s %s |\n", panel.figure,
                spec.label.c_str(), panel.paper_winner,
                *panel.paper_note ? " (" : "", panel.paper_note,
                *panel.paper_note ? ")" : "", measured.c_str(),
                cells.c_str(),
                match ? "reproduced" : "**deviation**");
  }
  std::printf("\n**%d/18 panels reproduce the paper's winner**; the "
              "deviations are analyzed below. Distinct winners across the "
              "suite: %zu (paper: no single optimal configuration). Worst "
              "mis-configuration penalty: %.0f%% (paper: up to ~70%%).\n\n",
              reproduced, winners.size(), (worst_penalty - 1.0) * 100.0);

  // Fig 10: normalized runtimes.
  std::printf("## Fig 10: runtime normalized to the fastest configuration "
              "(`fig10_normalized`)\n\n");
  std::printf("| Workload | Ranks | S-LocW | S-LocR | P-LocW | P-LocR |\n");
  std::printf("|---|---|---|---|---|---|\n");
  for (const auto family :
       {workloads::Family::kGtcReadOnly, workloads::Family::kGtcMatrixMult,
        workloads::Family::kMiniAmrReadOnly,
        workloads::Family::kMiniAmrMatrixMult}) {
    for (std::uint32_t ranks : workloads::kConcurrencyLevels) {
      const auto spec = workloads::make_workflow(family, ranks);
      auto sweep = executor.sweep(spec);
      if (!sweep.has_value()) return 1;
      std::printf("| %s | %u |", to_string(family), ranks);
      for (std::size_t i = 0; i < 4; ++i) {
        std::printf(" %.2fx |", sweep->normalized(i));
      }
      std::printf("\n");
    }
  }

  // Table II audit.
  std::printf("\n## Table II: recommendations vs empirical best "
              "(`table2_recommendations`)\n\n");
  core::AutoTuner tuner;
  std::printf("| Workflow | Features (simC/simW/anaC/anaR, size, conc) | "
              "Best | Rule-based | Model-based |\n");
  std::printf("|---|---|---|---|---|\n");
  int rule_optimal = 0;
  int model_optimal = 0;
  double worst_rule = 1.0;
  double worst_model = 1.0;
  for (const auto& spec : workloads::full_suite()) {
    auto report = tuner.tune(spec);
    if (!report.has_value()) return 1;
    const auto& f = report->profile.features;
    std::printf("| %s | %s/%s/%s/%s, %s, %s | %s | %s (%.2fx) | %s "
                "(%.2fx) |\n",
                spec.label.c_str(), core::to_string(f.sim_compute),
                core::to_string(f.sim_write),
                core::to_string(f.analytics_compute),
                core::to_string(f.analytics_read),
                f.small_objects ? "small" : "large",
                core::to_string(f.concurrency),
                report->best.label().c_str(),
                report->rule_based.config.label().c_str(),
                report->rule_based_regret,
                report->model_based.config.label().c_str(),
                report->model_based_regret);
    if (report->rule_based.config == report->best) ++rule_optimal;
    if (report->model_based.config == report->best) ++model_optimal;
    worst_rule = std::max(worst_rule, report->rule_based_regret);
    worst_model = std::max(worst_model, report->model_based_regret);
  }
  std::printf("\nRule-based (Table II) recommender: optimal on %d/18, "
              "worst regret %.2fx. Model-based: optimal on %d/18, worst "
              "regret %.2fx.\n",
              rule_optimal, worst_rule, model_optimal, worst_model);
  return 0;
}
