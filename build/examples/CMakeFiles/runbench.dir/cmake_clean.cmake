file(REMOVE_RECURSE
  "CMakeFiles/runbench.dir/runbench.cpp.o"
  "CMakeFiles/runbench.dir/runbench.cpp.o.d"
  "runbench"
  "runbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
