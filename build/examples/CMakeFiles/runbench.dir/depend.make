# Empty dependencies file for runbench.
# This may be replaced when dependencies are built.
