file(REMOVE_RECURSE
  "CMakeFiles/schedule_workflow.dir/schedule_workflow.cpp.o"
  "CMakeFiles/schedule_workflow.dir/schedule_workflow.cpp.o.d"
  "schedule_workflow"
  "schedule_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
