# Empty compiler generated dependencies file for schedule_workflow.
# This may be replaced when dependencies are built.
