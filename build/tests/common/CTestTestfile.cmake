# CMake generated Testfile for 
# Source directory: /root/repo/tests/common
# Build directory: /root/repo/build/tests/common
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common/test_common_units[1]_include.cmake")
include("/root/repo/build/tests/common/test_common_rng[1]_include.cmake")
include("/root/repo/build/tests/common/test_common_hash[1]_include.cmake")
include("/root/repo/build/tests/common/test_common_strings[1]_include.cmake")
include("/root/repo/build/tests/common/test_common_csv[1]_include.cmake")
include("/root/repo/build/tests/common/test_common_table[1]_include.cmake")
include("/root/repo/build/tests/common/test_common_expected[1]_include.cmake")
include("/root/repo/build/tests/common/test_common_serialize[1]_include.cmake")
include("/root/repo/build/tests/common/test_common_flags[1]_include.cmake")
