# Empty compiler generated dependencies file for test_common_units.
# This may be replaced when dependencies are built.
