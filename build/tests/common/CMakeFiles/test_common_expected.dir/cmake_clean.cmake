file(REMOVE_RECURSE
  "CMakeFiles/test_common_expected.dir/expected_test.cpp.o"
  "CMakeFiles/test_common_expected.dir/expected_test.cpp.o.d"
  "test_common_expected"
  "test_common_expected.pdb"
  "test_common_expected[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_expected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
