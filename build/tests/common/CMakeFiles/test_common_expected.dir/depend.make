# Empty dependencies file for test_common_expected.
# This may be replaced when dependencies are built.
