# Empty compiler generated dependencies file for test_common_serialize.
# This may be replaced when dependencies are built.
