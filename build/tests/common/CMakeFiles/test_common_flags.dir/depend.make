# Empty dependencies file for test_common_flags.
# This may be replaced when dependencies are built.
