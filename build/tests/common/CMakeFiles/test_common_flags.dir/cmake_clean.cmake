file(REMOVE_RECURSE
  "CMakeFiles/test_common_flags.dir/flags_test.cpp.o"
  "CMakeFiles/test_common_flags.dir/flags_test.cpp.o.d"
  "test_common_flags"
  "test_common_flags.pdb"
  "test_common_flags[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
