file(REMOVE_RECURSE
  "CMakeFiles/test_common_hash.dir/hash_test.cpp.o"
  "CMakeFiles/test_common_hash.dir/hash_test.cpp.o.d"
  "test_common_hash"
  "test_common_hash.pdb"
  "test_common_hash[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
