# Empty compiler generated dependencies file for test_trace_tracer.
# This may be replaced when dependencies are built.
