file(REMOVE_RECURSE
  "CMakeFiles/test_trace_tracer.dir/tracer_test.cpp.o"
  "CMakeFiles/test_trace_tracer.dir/tracer_test.cpp.o.d"
  "test_trace_tracer"
  "test_trace_tracer.pdb"
  "test_trace_tracer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_tracer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
