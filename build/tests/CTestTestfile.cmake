# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("topo")
subdirs("interconnect")
subdirs("pmemsim")
subdirs("stack")
subdirs("workflow")
subdirs("workloads")
subdirs("core")
subdirs("metrics")
subdirs("integration")
subdirs("trace")
