file(REMOVE_RECURSE
  "CMakeFiles/test_pmemsim_bandwidth.dir/bandwidth_test.cpp.o"
  "CMakeFiles/test_pmemsim_bandwidth.dir/bandwidth_test.cpp.o.d"
  "test_pmemsim_bandwidth"
  "test_pmemsim_bandwidth.pdb"
  "test_pmemsim_bandwidth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmemsim_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
