# Empty dependencies file for test_pmemsim_bandwidth.
# This may be replaced when dependencies are built.
