file(REMOVE_RECURSE
  "CMakeFiles/test_pmemsim_allocator.dir/allocator_test.cpp.o"
  "CMakeFiles/test_pmemsim_allocator.dir/allocator_test.cpp.o.d"
  "test_pmemsim_allocator"
  "test_pmemsim_allocator.pdb"
  "test_pmemsim_allocator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmemsim_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
