# Empty dependencies file for test_pmemsim_device.
# This may be replaced when dependencies are built.
