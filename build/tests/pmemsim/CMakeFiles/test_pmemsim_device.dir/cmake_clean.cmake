file(REMOVE_RECURSE
  "CMakeFiles/test_pmemsim_device.dir/device_test.cpp.o"
  "CMakeFiles/test_pmemsim_device.dir/device_test.cpp.o.d"
  "test_pmemsim_device"
  "test_pmemsim_device.pdb"
  "test_pmemsim_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmemsim_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
