# Empty dependencies file for test_pmemsim_space.
# This may be replaced when dependencies are built.
