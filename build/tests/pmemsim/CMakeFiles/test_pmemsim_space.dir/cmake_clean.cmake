file(REMOVE_RECURSE
  "CMakeFiles/test_pmemsim_space.dir/space_test.cpp.o"
  "CMakeFiles/test_pmemsim_space.dir/space_test.cpp.o.d"
  "test_pmemsim_space"
  "test_pmemsim_space.pdb"
  "test_pmemsim_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pmemsim_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
