# CMake generated Testfile for 
# Source directory: /root/repo/tests/pmemsim
# Build directory: /root/repo/build/tests/pmemsim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/pmemsim/test_pmemsim_bandwidth[1]_include.cmake")
include("/root/repo/build/tests/pmemsim/test_pmemsim_allocator[1]_include.cmake")
include("/root/repo/build/tests/pmemsim/test_pmemsim_space[1]_include.cmake")
include("/root/repo/build/tests/pmemsim/test_pmemsim_device[1]_include.cmake")
