file(REMOVE_RECURSE
  "CMakeFiles/test_core_autotuner.dir/autotuner_test.cpp.o"
  "CMakeFiles/test_core_autotuner.dir/autotuner_test.cpp.o.d"
  "test_core_autotuner"
  "test_core_autotuner.pdb"
  "test_core_autotuner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_autotuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
