# Empty compiler generated dependencies file for test_core_autotuner.
# This may be replaced when dependencies are built.
