# Empty dependencies file for test_core_characterizer.
# This may be replaced when dependencies are built.
