file(REMOVE_RECURSE
  "CMakeFiles/test_core_characterizer.dir/characterizer_test.cpp.o"
  "CMakeFiles/test_core_characterizer.dir/characterizer_test.cpp.o.d"
  "test_core_characterizer"
  "test_core_characterizer.pdb"
  "test_core_characterizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_characterizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
