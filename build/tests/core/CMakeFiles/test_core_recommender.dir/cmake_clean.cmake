file(REMOVE_RECURSE
  "CMakeFiles/test_core_recommender.dir/recommender_test.cpp.o"
  "CMakeFiles/test_core_recommender.dir/recommender_test.cpp.o.d"
  "test_core_recommender"
  "test_core_recommender.pdb"
  "test_core_recommender[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
