# Empty compiler generated dependencies file for test_core_recommender.
# This may be replaced when dependencies are built.
