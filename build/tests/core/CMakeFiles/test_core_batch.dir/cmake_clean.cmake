file(REMOVE_RECURSE
  "CMakeFiles/test_core_batch.dir/batch_test.cpp.o"
  "CMakeFiles/test_core_batch.dir/batch_test.cpp.o.d"
  "test_core_batch"
  "test_core_batch.pdb"
  "test_core_batch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
