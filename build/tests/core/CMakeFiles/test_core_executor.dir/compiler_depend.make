# Empty compiler generated dependencies file for test_core_executor.
# This may be replaced when dependencies are built.
