# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/test_core_config[1]_include.cmake")
include("/root/repo/build/tests/core/test_core_executor[1]_include.cmake")
include("/root/repo/build/tests/core/test_core_characterizer[1]_include.cmake")
include("/root/repo/build/tests/core/test_core_recommender[1]_include.cmake")
include("/root/repo/build/tests/core/test_core_autotuner[1]_include.cmake")
include("/root/repo/build/tests/core/test_core_batch[1]_include.cmake")
