# Empty dependencies file for test_workloads_suite.
# This may be replaced when dependencies are built.
