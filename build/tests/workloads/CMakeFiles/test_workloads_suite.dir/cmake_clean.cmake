file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_suite.dir/suite_test.cpp.o"
  "CMakeFiles/test_workloads_suite.dir/suite_test.cpp.o.d"
  "test_workloads_suite"
  "test_workloads_suite.pdb"
  "test_workloads_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
