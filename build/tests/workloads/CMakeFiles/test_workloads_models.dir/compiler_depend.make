# Empty compiler generated dependencies file for test_workloads_models.
# This may be replaced when dependencies are built.
