
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads/models_test.cpp" "tests/workloads/CMakeFiles/test_workloads_models.dir/models_test.cpp.o" "gcc" "tests/workloads/CMakeFiles/test_workloads_models.dir/models_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/pmemflow_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/pmemflow_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/pmemflow_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/pmemsim/CMakeFiles/pmemflow_pmemsim.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pmemflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/pmemflow_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/pmemflow_interconnect.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pmemflow_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmemflow_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
