file(REMOVE_RECURSE
  "CMakeFiles/test_workloads_models.dir/models_test.cpp.o"
  "CMakeFiles/test_workloads_models.dir/models_test.cpp.o.d"
  "test_workloads_models"
  "test_workloads_models.pdb"
  "test_workloads_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
