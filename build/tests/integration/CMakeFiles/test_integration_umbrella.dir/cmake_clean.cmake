file(REMOVE_RECURSE
  "CMakeFiles/test_integration_umbrella.dir/umbrella_test.cpp.o"
  "CMakeFiles/test_integration_umbrella.dir/umbrella_test.cpp.o.d"
  "test_integration_umbrella"
  "test_integration_umbrella.pdb"
  "test_integration_umbrella[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_umbrella.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
