file(REMOVE_RECURSE
  "CMakeFiles/test_integration_acceptance.dir/acceptance_test.cpp.o"
  "CMakeFiles/test_integration_acceptance.dir/acceptance_test.cpp.o.d"
  "test_integration_acceptance"
  "test_integration_acceptance.pdb"
  "test_integration_acceptance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_acceptance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
