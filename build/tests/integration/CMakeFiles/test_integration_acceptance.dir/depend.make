# Empty dependencies file for test_integration_acceptance.
# This may be replaced when dependencies are built.
