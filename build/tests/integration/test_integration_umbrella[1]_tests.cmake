add_test([=[Umbrella.EndToEndThroughPublicApi]=]  /root/repo/build/tests/integration/test_integration_umbrella [==[--gtest_filter=Umbrella.EndToEndThroughPublicApi]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Umbrella.EndToEndThroughPublicApi]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests/integration SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_integration_umbrella_TESTS Umbrella.EndToEndThroughPublicApi)
