# Empty compiler generated dependencies file for test_workflow_colocation.
# This may be replaced when dependencies are built.
