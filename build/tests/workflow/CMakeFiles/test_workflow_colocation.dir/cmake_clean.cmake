file(REMOVE_RECURSE
  "CMakeFiles/test_workflow_colocation.dir/colocation_test.cpp.o"
  "CMakeFiles/test_workflow_colocation.dir/colocation_test.cpp.o.d"
  "test_workflow_colocation"
  "test_workflow_colocation.pdb"
  "test_workflow_colocation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workflow_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
