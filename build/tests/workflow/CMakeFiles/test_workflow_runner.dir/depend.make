# Empty dependencies file for test_workflow_runner.
# This may be replaced when dependencies are built.
