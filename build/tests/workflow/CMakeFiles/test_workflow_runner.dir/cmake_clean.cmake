file(REMOVE_RECURSE
  "CMakeFiles/test_workflow_runner.dir/runner_test.cpp.o"
  "CMakeFiles/test_workflow_runner.dir/runner_test.cpp.o.d"
  "test_workflow_runner"
  "test_workflow_runner.pdb"
  "test_workflow_runner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workflow_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
