# CMake generated Testfile for 
# Source directory: /root/repo/tests/workflow
# Build directory: /root/repo/build/tests/workflow
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/workflow/test_workflow_runner[1]_include.cmake")
include("/root/repo/build/tests/workflow/test_workflow_colocation[1]_include.cmake")
