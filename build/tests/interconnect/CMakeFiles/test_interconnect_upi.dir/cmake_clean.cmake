file(REMOVE_RECURSE
  "CMakeFiles/test_interconnect_upi.dir/upi_test.cpp.o"
  "CMakeFiles/test_interconnect_upi.dir/upi_test.cpp.o.d"
  "test_interconnect_upi"
  "test_interconnect_upi.pdb"
  "test_interconnect_upi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interconnect_upi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
