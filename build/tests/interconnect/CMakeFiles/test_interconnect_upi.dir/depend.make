# Empty dependencies file for test_interconnect_upi.
# This may be replaced when dependencies are built.
