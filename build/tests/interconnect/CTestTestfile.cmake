# CMake generated Testfile for 
# Source directory: /root/repo/tests/interconnect
# Build directory: /root/repo/build/tests/interconnect
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/interconnect/test_interconnect_upi[1]_include.cmake")
