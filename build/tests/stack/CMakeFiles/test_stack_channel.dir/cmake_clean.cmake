file(REMOVE_RECURSE
  "CMakeFiles/test_stack_channel.dir/channel_test.cpp.o"
  "CMakeFiles/test_stack_channel.dir/channel_test.cpp.o.d"
  "test_stack_channel"
  "test_stack_channel.pdb"
  "test_stack_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
