# Empty dependencies file for test_stack_nova_channel.
# This may be replaced when dependencies are built.
