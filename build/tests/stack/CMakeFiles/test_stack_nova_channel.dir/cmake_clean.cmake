file(REMOVE_RECURSE
  "CMakeFiles/test_stack_nova_channel.dir/nova_channel_test.cpp.o"
  "CMakeFiles/test_stack_nova_channel.dir/nova_channel_test.cpp.o.d"
  "test_stack_nova_channel"
  "test_stack_nova_channel.pdb"
  "test_stack_nova_channel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack_nova_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
