# Empty dependencies file for test_stack_channel_contract.
# This may be replaced when dependencies are built.
