file(REMOVE_RECURSE
  "CMakeFiles/test_stack_channel_contract.dir/channel_contract_test.cpp.o"
  "CMakeFiles/test_stack_channel_contract.dir/channel_contract_test.cpp.o.d"
  "test_stack_channel_contract"
  "test_stack_channel_contract.pdb"
  "test_stack_channel_contract[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack_channel_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
