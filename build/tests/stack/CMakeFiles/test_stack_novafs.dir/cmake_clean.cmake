file(REMOVE_RECURSE
  "CMakeFiles/test_stack_novafs.dir/novafs_test.cpp.o"
  "CMakeFiles/test_stack_novafs.dir/novafs_test.cpp.o.d"
  "test_stack_novafs"
  "test_stack_novafs.pdb"
  "test_stack_novafs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack_novafs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
