# Empty dependencies file for test_stack_novafs.
# This may be replaced when dependencies are built.
