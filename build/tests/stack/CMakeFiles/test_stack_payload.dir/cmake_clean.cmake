file(REMOVE_RECURSE
  "CMakeFiles/test_stack_payload.dir/payload_test.cpp.o"
  "CMakeFiles/test_stack_payload.dir/payload_test.cpp.o.d"
  "test_stack_payload"
  "test_stack_payload.pdb"
  "test_stack_payload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
