# Empty dependencies file for test_stack_payload.
# This may be replaced when dependencies are built.
