file(REMOVE_RECURSE
  "CMakeFiles/test_stack_nvstream.dir/nvstream_test.cpp.o"
  "CMakeFiles/test_stack_nvstream.dir/nvstream_test.cpp.o.d"
  "test_stack_nvstream"
  "test_stack_nvstream.pdb"
  "test_stack_nvstream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack_nvstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
