# Empty dependencies file for test_stack_nvstream.
# This may be replaced when dependencies are built.
