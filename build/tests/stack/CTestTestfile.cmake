# CMake generated Testfile for 
# Source directory: /root/repo/tests/stack
# Build directory: /root/repo/build/tests/stack
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/stack/test_stack_payload[1]_include.cmake")
include("/root/repo/build/tests/stack/test_stack_channel[1]_include.cmake")
include("/root/repo/build/tests/stack/test_stack_nvstream[1]_include.cmake")
include("/root/repo/build/tests/stack/test_stack_novafs[1]_include.cmake")
include("/root/repo/build/tests/stack/test_stack_nova_channel[1]_include.cmake")
include("/root/repo/build/tests/stack/test_stack_channel_contract[1]_include.cmake")
