file(REMOVE_RECURSE
  "CMakeFiles/test_sim_flow.dir/flow_test.cpp.o"
  "CMakeFiles/test_sim_flow.dir/flow_test.cpp.o.d"
  "test_sim_flow"
  "test_sim_flow.pdb"
  "test_sim_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
