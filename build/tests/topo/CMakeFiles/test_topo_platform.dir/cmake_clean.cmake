file(REMOVE_RECURSE
  "CMakeFiles/test_topo_platform.dir/platform_test.cpp.o"
  "CMakeFiles/test_topo_platform.dir/platform_test.cpp.o.d"
  "test_topo_platform"
  "test_topo_platform.pdb"
  "test_topo_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topo_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
