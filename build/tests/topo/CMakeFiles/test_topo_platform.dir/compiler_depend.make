# Empty compiler generated dependencies file for test_topo_platform.
# This may be replaced when dependencies are built.
