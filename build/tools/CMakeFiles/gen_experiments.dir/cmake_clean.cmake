file(REMOVE_RECURSE
  "CMakeFiles/gen_experiments.dir/gen_experiments.cpp.o"
  "CMakeFiles/gen_experiments.dir/gen_experiments.cpp.o.d"
  "gen_experiments"
  "gen_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
