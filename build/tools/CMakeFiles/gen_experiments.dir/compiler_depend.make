# Empty compiler generated dependencies file for gen_experiments.
# This may be replaced when dependencies are built.
