file(REMOVE_RECURSE
  "libpmemflow_pmemsim.a"
)
