
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmemsim/allocator.cpp" "src/pmemsim/CMakeFiles/pmemflow_pmemsim.dir/allocator.cpp.o" "gcc" "src/pmemsim/CMakeFiles/pmemflow_pmemsim.dir/allocator.cpp.o.d"
  "/root/repo/src/pmemsim/bandwidth.cpp" "src/pmemsim/CMakeFiles/pmemflow_pmemsim.dir/bandwidth.cpp.o" "gcc" "src/pmemsim/CMakeFiles/pmemflow_pmemsim.dir/bandwidth.cpp.o.d"
  "/root/repo/src/pmemsim/device.cpp" "src/pmemsim/CMakeFiles/pmemflow_pmemsim.dir/device.cpp.o" "gcc" "src/pmemsim/CMakeFiles/pmemflow_pmemsim.dir/device.cpp.o.d"
  "/root/repo/src/pmemsim/space.cpp" "src/pmemsim/CMakeFiles/pmemflow_pmemsim.dir/space.cpp.o" "gcc" "src/pmemsim/CMakeFiles/pmemflow_pmemsim.dir/space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmemflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pmemflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/pmemflow_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/pmemflow_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
