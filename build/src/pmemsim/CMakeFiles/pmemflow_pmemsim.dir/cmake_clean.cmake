file(REMOVE_RECURSE
  "CMakeFiles/pmemflow_pmemsim.dir/allocator.cpp.o"
  "CMakeFiles/pmemflow_pmemsim.dir/allocator.cpp.o.d"
  "CMakeFiles/pmemflow_pmemsim.dir/bandwidth.cpp.o"
  "CMakeFiles/pmemflow_pmemsim.dir/bandwidth.cpp.o.d"
  "CMakeFiles/pmemflow_pmemsim.dir/device.cpp.o"
  "CMakeFiles/pmemflow_pmemsim.dir/device.cpp.o.d"
  "CMakeFiles/pmemflow_pmemsim.dir/space.cpp.o"
  "CMakeFiles/pmemflow_pmemsim.dir/space.cpp.o.d"
  "libpmemflow_pmemsim.a"
  "libpmemflow_pmemsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemflow_pmemsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
