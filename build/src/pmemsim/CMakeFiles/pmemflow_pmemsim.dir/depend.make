# Empty dependencies file for pmemflow_pmemsim.
# This may be replaced when dependencies are built.
