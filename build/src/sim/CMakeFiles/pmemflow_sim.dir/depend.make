# Empty dependencies file for pmemflow_sim.
# This may be replaced when dependencies are built.
