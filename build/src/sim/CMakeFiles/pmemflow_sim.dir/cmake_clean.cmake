file(REMOVE_RECURSE
  "CMakeFiles/pmemflow_sim.dir/engine.cpp.o"
  "CMakeFiles/pmemflow_sim.dir/engine.cpp.o.d"
  "CMakeFiles/pmemflow_sim.dir/event_queue.cpp.o"
  "CMakeFiles/pmemflow_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/pmemflow_sim.dir/flow.cpp.o"
  "CMakeFiles/pmemflow_sim.dir/flow.cpp.o.d"
  "CMakeFiles/pmemflow_sim.dir/sync.cpp.o"
  "CMakeFiles/pmemflow_sim.dir/sync.cpp.o.d"
  "libpmemflow_sim.a"
  "libpmemflow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemflow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
