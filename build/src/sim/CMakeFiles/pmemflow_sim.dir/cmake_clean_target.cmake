file(REMOVE_RECURSE
  "libpmemflow_sim.a"
)
