file(REMOVE_RECURSE
  "libpmemflow_interconnect.a"
)
