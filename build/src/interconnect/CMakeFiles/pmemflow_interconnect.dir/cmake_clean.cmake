file(REMOVE_RECURSE
  "CMakeFiles/pmemflow_interconnect.dir/upi.cpp.o"
  "CMakeFiles/pmemflow_interconnect.dir/upi.cpp.o.d"
  "libpmemflow_interconnect.a"
  "libpmemflow_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemflow_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
