# Empty compiler generated dependencies file for pmemflow_interconnect.
# This may be replaced when dependencies are built.
