# Empty compiler generated dependencies file for pmemflow_core.
# This may be replaced when dependencies are built.
