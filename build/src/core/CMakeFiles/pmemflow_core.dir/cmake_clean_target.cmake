file(REMOVE_RECURSE
  "libpmemflow_core.a"
)
