file(REMOVE_RECURSE
  "CMakeFiles/pmemflow_core.dir/autotuner.cpp.o"
  "CMakeFiles/pmemflow_core.dir/autotuner.cpp.o.d"
  "CMakeFiles/pmemflow_core.dir/batch.cpp.o"
  "CMakeFiles/pmemflow_core.dir/batch.cpp.o.d"
  "CMakeFiles/pmemflow_core.dir/characterizer.cpp.o"
  "CMakeFiles/pmemflow_core.dir/characterizer.cpp.o.d"
  "CMakeFiles/pmemflow_core.dir/config.cpp.o"
  "CMakeFiles/pmemflow_core.dir/config.cpp.o.d"
  "CMakeFiles/pmemflow_core.dir/executor.cpp.o"
  "CMakeFiles/pmemflow_core.dir/executor.cpp.o.d"
  "CMakeFiles/pmemflow_core.dir/recommender.cpp.o"
  "CMakeFiles/pmemflow_core.dir/recommender.cpp.o.d"
  "libpmemflow_core.a"
  "libpmemflow_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemflow_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
