
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stack/channel.cpp" "src/stack/CMakeFiles/pmemflow_stack.dir/channel.cpp.o" "gcc" "src/stack/CMakeFiles/pmemflow_stack.dir/channel.cpp.o.d"
  "/root/repo/src/stack/nova_channel.cpp" "src/stack/CMakeFiles/pmemflow_stack.dir/nova_channel.cpp.o" "gcc" "src/stack/CMakeFiles/pmemflow_stack.dir/nova_channel.cpp.o.d"
  "/root/repo/src/stack/novafs.cpp" "src/stack/CMakeFiles/pmemflow_stack.dir/novafs.cpp.o" "gcc" "src/stack/CMakeFiles/pmemflow_stack.dir/novafs.cpp.o.d"
  "/root/repo/src/stack/nvstream.cpp" "src/stack/CMakeFiles/pmemflow_stack.dir/nvstream.cpp.o" "gcc" "src/stack/CMakeFiles/pmemflow_stack.dir/nvstream.cpp.o.d"
  "/root/repo/src/stack/payload.cpp" "src/stack/CMakeFiles/pmemflow_stack.dir/payload.cpp.o" "gcc" "src/stack/CMakeFiles/pmemflow_stack.dir/payload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmemflow_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pmemflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pmemsim/CMakeFiles/pmemflow_pmemsim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/pmemflow_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/interconnect/CMakeFiles/pmemflow_interconnect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
