file(REMOVE_RECURSE
  "libpmemflow_stack.a"
)
