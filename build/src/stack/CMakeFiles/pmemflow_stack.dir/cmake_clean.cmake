file(REMOVE_RECURSE
  "CMakeFiles/pmemflow_stack.dir/channel.cpp.o"
  "CMakeFiles/pmemflow_stack.dir/channel.cpp.o.d"
  "CMakeFiles/pmemflow_stack.dir/nova_channel.cpp.o"
  "CMakeFiles/pmemflow_stack.dir/nova_channel.cpp.o.d"
  "CMakeFiles/pmemflow_stack.dir/novafs.cpp.o"
  "CMakeFiles/pmemflow_stack.dir/novafs.cpp.o.d"
  "CMakeFiles/pmemflow_stack.dir/nvstream.cpp.o"
  "CMakeFiles/pmemflow_stack.dir/nvstream.cpp.o.d"
  "CMakeFiles/pmemflow_stack.dir/payload.cpp.o"
  "CMakeFiles/pmemflow_stack.dir/payload.cpp.o.d"
  "libpmemflow_stack.a"
  "libpmemflow_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemflow_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
