# Empty compiler generated dependencies file for pmemflow_stack.
# This may be replaced when dependencies are built.
