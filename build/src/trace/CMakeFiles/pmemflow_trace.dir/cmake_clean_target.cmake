file(REMOVE_RECURSE
  "libpmemflow_trace.a"
)
