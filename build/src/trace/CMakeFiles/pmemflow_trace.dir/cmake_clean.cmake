file(REMOVE_RECURSE
  "CMakeFiles/pmemflow_trace.dir/tracer.cpp.o"
  "CMakeFiles/pmemflow_trace.dir/tracer.cpp.o.d"
  "libpmemflow_trace.a"
  "libpmemflow_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemflow_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
