# Empty dependencies file for pmemflow_trace.
# This may be replaced when dependencies are built.
