file(REMOVE_RECURSE
  "CMakeFiles/pmemflow_workloads.dir/analytics.cpp.o"
  "CMakeFiles/pmemflow_workloads.dir/analytics.cpp.o.d"
  "CMakeFiles/pmemflow_workloads.dir/gtc.cpp.o"
  "CMakeFiles/pmemflow_workloads.dir/gtc.cpp.o.d"
  "CMakeFiles/pmemflow_workloads.dir/microbench.cpp.o"
  "CMakeFiles/pmemflow_workloads.dir/microbench.cpp.o.d"
  "CMakeFiles/pmemflow_workloads.dir/miniamr.cpp.o"
  "CMakeFiles/pmemflow_workloads.dir/miniamr.cpp.o.d"
  "CMakeFiles/pmemflow_workloads.dir/suite.cpp.o"
  "CMakeFiles/pmemflow_workloads.dir/suite.cpp.o.d"
  "CMakeFiles/pmemflow_workloads.dir/synthetic.cpp.o"
  "CMakeFiles/pmemflow_workloads.dir/synthetic.cpp.o.d"
  "libpmemflow_workloads.a"
  "libpmemflow_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemflow_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
