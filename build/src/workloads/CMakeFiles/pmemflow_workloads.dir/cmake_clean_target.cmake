file(REMOVE_RECURSE
  "libpmemflow_workloads.a"
)
