# Empty compiler generated dependencies file for pmemflow_workloads.
# This may be replaced when dependencies are built.
