file(REMOVE_RECURSE
  "libpmemflow_workflow.a"
)
