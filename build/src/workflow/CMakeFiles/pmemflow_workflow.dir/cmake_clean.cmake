file(REMOVE_RECURSE
  "CMakeFiles/pmemflow_workflow.dir/runner.cpp.o"
  "CMakeFiles/pmemflow_workflow.dir/runner.cpp.o.d"
  "libpmemflow_workflow.a"
  "libpmemflow_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemflow_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
