# Empty dependencies file for pmemflow_workflow.
# This may be replaced when dependencies are built.
