file(REMOVE_RECURSE
  "CMakeFiles/pmemflow_metrics.dir/report.cpp.o"
  "CMakeFiles/pmemflow_metrics.dir/report.cpp.o.d"
  "libpmemflow_metrics.a"
  "libpmemflow_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemflow_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
