# Empty compiler generated dependencies file for pmemflow_metrics.
# This may be replaced when dependencies are built.
