file(REMOVE_RECURSE
  "libpmemflow_metrics.a"
)
