file(REMOVE_RECURSE
  "libpmemflow_topo.a"
)
