file(REMOVE_RECURSE
  "CMakeFiles/pmemflow_topo.dir/platform.cpp.o"
  "CMakeFiles/pmemflow_topo.dir/platform.cpp.o.d"
  "libpmemflow_topo.a"
  "libpmemflow_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemflow_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
