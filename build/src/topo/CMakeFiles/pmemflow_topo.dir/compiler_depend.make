# Empty compiler generated dependencies file for pmemflow_topo.
# This may be replaced when dependencies are built.
