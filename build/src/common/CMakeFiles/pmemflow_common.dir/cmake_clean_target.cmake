file(REMOVE_RECURSE
  "libpmemflow_common.a"
)
