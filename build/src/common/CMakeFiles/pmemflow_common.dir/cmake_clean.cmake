file(REMOVE_RECURSE
  "CMakeFiles/pmemflow_common.dir/csv.cpp.o"
  "CMakeFiles/pmemflow_common.dir/csv.cpp.o.d"
  "CMakeFiles/pmemflow_common.dir/flags.cpp.o"
  "CMakeFiles/pmemflow_common.dir/flags.cpp.o.d"
  "CMakeFiles/pmemflow_common.dir/log.cpp.o"
  "CMakeFiles/pmemflow_common.dir/log.cpp.o.d"
  "CMakeFiles/pmemflow_common.dir/strings.cpp.o"
  "CMakeFiles/pmemflow_common.dir/strings.cpp.o.d"
  "CMakeFiles/pmemflow_common.dir/table.cpp.o"
  "CMakeFiles/pmemflow_common.dir/table.cpp.o.d"
  "libpmemflow_common.a"
  "libpmemflow_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemflow_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
