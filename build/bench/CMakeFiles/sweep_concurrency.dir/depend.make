# Empty dependencies file for sweep_concurrency.
# This may be replaced when dependencies are built.
