file(REMOVE_RECURSE
  "CMakeFiles/sweep_concurrency.dir/sweep_concurrency.cpp.o"
  "CMakeFiles/sweep_concurrency.dir/sweep_concurrency.cpp.o.d"
  "sweep_concurrency"
  "sweep_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweep_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
