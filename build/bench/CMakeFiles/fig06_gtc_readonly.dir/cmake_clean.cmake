file(REMOVE_RECURSE
  "CMakeFiles/fig06_gtc_readonly.dir/fig06_gtc_readonly.cpp.o"
  "CMakeFiles/fig06_gtc_readonly.dir/fig06_gtc_readonly.cpp.o.d"
  "fig06_gtc_readonly"
  "fig06_gtc_readonly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_gtc_readonly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
