# Empty dependencies file for fig06_gtc_readonly.
# This may be replaced when dependencies are built.
