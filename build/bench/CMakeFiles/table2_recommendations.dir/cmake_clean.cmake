file(REMOVE_RECURSE
  "CMakeFiles/table2_recommendations.dir/table2_recommendations.cpp.o"
  "CMakeFiles/table2_recommendations.dir/table2_recommendations.cpp.o.d"
  "table2_recommendations"
  "table2_recommendations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_recommendations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
