# Empty dependencies file for table2_recommendations.
# This may be replaced when dependencies are built.
