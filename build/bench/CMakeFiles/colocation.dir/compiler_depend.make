# Empty compiler generated dependencies file for colocation.
# This may be replaced when dependencies are built.
