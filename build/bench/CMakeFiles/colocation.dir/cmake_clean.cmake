file(REMOVE_RECURSE
  "CMakeFiles/colocation.dir/colocation.cpp.o"
  "CMakeFiles/colocation.dir/colocation.cpp.o.d"
  "colocation"
  "colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
