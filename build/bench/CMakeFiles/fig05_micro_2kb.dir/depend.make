# Empty dependencies file for fig05_micro_2kb.
# This may be replaced when dependencies are built.
