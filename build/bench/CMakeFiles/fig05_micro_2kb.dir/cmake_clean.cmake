file(REMOVE_RECURSE
  "CMakeFiles/fig05_micro_2kb.dir/fig05_micro_2kb.cpp.o"
  "CMakeFiles/fig05_micro_2kb.dir/fig05_micro_2kb.cpp.o.d"
  "fig05_micro_2kb"
  "fig05_micro_2kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_micro_2kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
