# Empty dependencies file for whatif_devices.
# This may be replaced when dependencies are built.
