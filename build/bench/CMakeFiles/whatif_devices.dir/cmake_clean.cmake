file(REMOVE_RECURSE
  "CMakeFiles/whatif_devices.dir/whatif_devices.cpp.o"
  "CMakeFiles/whatif_devices.dir/whatif_devices.cpp.o.d"
  "whatif_devices"
  "whatif_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
