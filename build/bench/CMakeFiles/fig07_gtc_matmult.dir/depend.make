# Empty dependencies file for fig07_gtc_matmult.
# This may be replaced when dependencies are built.
