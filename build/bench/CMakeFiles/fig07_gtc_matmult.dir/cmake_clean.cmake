file(REMOVE_RECURSE
  "CMakeFiles/fig07_gtc_matmult.dir/fig07_gtc_matmult.cpp.o"
  "CMakeFiles/fig07_gtc_matmult.dir/fig07_gtc_matmult.cpp.o.d"
  "fig07_gtc_matmult"
  "fig07_gtc_matmult.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_gtc_matmult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
