# Empty compiler generated dependencies file for fig04_micro_64mb.
# This may be replaced when dependencies are built.
