file(REMOVE_RECURSE
  "CMakeFiles/fig04_micro_64mb.dir/fig04_micro_64mb.cpp.o"
  "CMakeFiles/fig04_micro_64mb.dir/fig04_micro_64mb.cpp.o.d"
  "fig04_micro_64mb"
  "fig04_micro_64mb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_micro_64mb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
