# Empty dependencies file for fig09_miniamr_matmult.
# This may be replaced when dependencies are built.
