file(REMOVE_RECURSE
  "CMakeFiles/fig09_miniamr_matmult.dir/fig09_miniamr_matmult.cpp.o"
  "CMakeFiles/fig09_miniamr_matmult.dir/fig09_miniamr_matmult.cpp.o.d"
  "fig09_miniamr_matmult"
  "fig09_miniamr_matmult.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_miniamr_matmult.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
