# Empty dependencies file for batch_makespan.
# This may be replaced when dependencies are built.
