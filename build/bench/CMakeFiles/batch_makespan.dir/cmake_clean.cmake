file(REMOVE_RECURSE
  "CMakeFiles/batch_makespan.dir/batch_makespan.cpp.o"
  "CMakeFiles/batch_makespan.dir/batch_makespan.cpp.o.d"
  "batch_makespan"
  "batch_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
