file(REMOVE_RECURSE
  "../lib/libpmemflow_bench_common.a"
  "../lib/libpmemflow_bench_common.pdb"
  "CMakeFiles/pmemflow_bench_common.dir/common.cpp.o"
  "CMakeFiles/pmemflow_bench_common.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmemflow_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
