file(REMOVE_RECURSE
  "../lib/libpmemflow_bench_common.a"
)
