# Empty compiler generated dependencies file for pmemflow_bench_common.
# This may be replaced when dependencies are built.
