# Empty dependencies file for devchar_pmem.
# This may be replaced when dependencies are built.
