file(REMOVE_RECURSE
  "CMakeFiles/devchar_pmem.dir/devchar_pmem.cpp.o"
  "CMakeFiles/devchar_pmem.dir/devchar_pmem.cpp.o.d"
  "devchar_pmem"
  "devchar_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devchar_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
