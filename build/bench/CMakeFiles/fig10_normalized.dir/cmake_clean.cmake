file(REMOVE_RECURSE
  "CMakeFiles/fig10_normalized.dir/fig10_normalized.cpp.o"
  "CMakeFiles/fig10_normalized.dir/fig10_normalized.cpp.o.d"
  "fig10_normalized"
  "fig10_normalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_normalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
