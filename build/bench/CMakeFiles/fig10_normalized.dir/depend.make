# Empty dependencies file for fig10_normalized.
# This may be replaced when dependencies are built.
