file(REMOVE_RECURSE
  "CMakeFiles/fig08_miniamr_readonly.dir/fig08_miniamr_readonly.cpp.o"
  "CMakeFiles/fig08_miniamr_readonly.dir/fig08_miniamr_readonly.cpp.o.d"
  "fig08_miniamr_readonly"
  "fig08_miniamr_readonly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_miniamr_readonly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
