# Empty compiler generated dependencies file for fig08_miniamr_readonly.
# This may be replaced when dependencies are built.
