# Empty compiler generated dependencies file for fig03_parameter_space.
# This may be replaced when dependencies are built.
