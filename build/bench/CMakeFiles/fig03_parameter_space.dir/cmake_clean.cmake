file(REMOVE_RECURSE
  "CMakeFiles/fig03_parameter_space.dir/fig03_parameter_space.cpp.o"
  "CMakeFiles/fig03_parameter_space.dir/fig03_parameter_space.cpp.o.d"
  "fig03_parameter_space"
  "fig03_parameter_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_parameter_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
